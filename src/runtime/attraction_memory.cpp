#include "runtime/attraction_memory.hpp"

#include "runtime/site.hpp"

namespace sdvm {

void AttractionMemory::register_metrics(metrics::MetricsRegistry& registry) {
  registry.register_counter("mem.migrations_in", &migrations_in);
  registry.register_counter("mem.migrations_out", &migrations_out);
  registry.register_counter("mem.local_hits", &local_hits);
  registry.register_counter("mem.frames_created", &frames_created);
  registry.register_counter("mem.params_applied", &params_applied);
  registry.register_counter("mem.remote_fetches", &remote_fetches);
  registry.register_counter("mem.directory_lookups", &directory_lookups);
  registry.register_gauge("mem.frames", [this] {
    return static_cast<std::int64_t>(frames_.size());
  });
  registry.register_gauge("mem.objects", [this] {
    return static_cast<std::int64_t>(objects_.size());
  });
  registry.register_counter("dir.shard_handoffs", &shard_handoffs);
  registry.register_counter("dir.lease_renewals", &lease_renewals);
  registry.register_counter("dir.stale_epoch_rejects", &stale_epoch_rejects);
  registry.register_gauge("dir.shard_rebuild_ms", [this] {
    return static_cast<std::int64_t>(last_rebuild_ns_ / 1'000'000);
  });
  registry.register_gauge("dir.shards_held", [this] {
    return static_cast<std::int64_t>(shards_held());
  });
}

// ---------------------------------------------------------------------------
// Microframes
// ---------------------------------------------------------------------------

FrameId AttractionMemory::create_frame(ProgramId pid, MicrothreadId tid,
                                       std::size_t nparams, int priority) {
  ++frames_created;
  FrameId id(site_.id(), next_local_id_++);
  Microframe frame(id, pid, tid, nparams, priority);
  site_.trace(FrameEvent::kCreated, id, tid);
  if (nparams == 0) {
    frame.state = FrameState::kExecutable;
    frame_became_executable(std::move(frame));
  } else {
    frames_.emplace(id, std::move(frame));
  }
  return id;
}

Status AttractionMemory::apply_param(GlobalAddress frame, std::size_t slot,
                                     std::vector<std::byte> value) {
  auto it = frames_.find(frame);
  if (it != frames_.end() && site_.messages().defer_active()) {
    // A microthread is executing under virtual time: even local results
    // must not land before its virtual completion. Route through the
    // deferred loopback path.
    ByteWriter w;
    w.address(frame);
    w.u32(static_cast<std::uint32_t>(slot));
    w.blob(value);
    SdMessage msg;
    msg.dst = site_.id();
    msg.src_mgr = msg.dst_mgr = ManagerId::kAttractionMemory;
    msg.type = MsgType::kApplyParam;
    msg.payload = w.take();
    return site_.messages().send(std::move(msg));
  }
  if (it != frames_.end()) {
    Status st = it->second.apply(slot, std::move(value));
    if (!st.is_ok()) {
      SDVM_WARN(site_.tag()) << "apply to frame " << frame.value
                             << " failed: " << st.to_string();
      return st;
    }
    ++params_applied;
    site_.trace(FrameEvent::kParamApplied, frame, it->second.thread);
    // "Every time a result ... is applied to a waiting microframe, the
    // attraction memory checks whether this was the last missing
    // parameter."
    if (it->second.executable()) {
      Microframe f = std::move(it->second);
      frames_.erase(it);
      f.state = FrameState::kExecutable;
      frame_became_executable(std::move(f));
    }
    return Status::ok();
  }

  SiteId home = site_.cluster().resolve_successor(frame.home_site());
  if (home == site_.id()) {
    // Homed here but unknown. Either the frame is still in flight to us (a
    // signing-off site's kDirectoryImport races the frame's own results),
    // or it was consumed and this is a post-recovery duplicate. Park the
    // value: adoption applies it, the TTL purge forgets true duplicates.
    park_param(frame, slot, std::move(value));
    return Status::ok();
  }

  ByteWriter w;
  w.address(frame);
  w.u32(static_cast<std::uint32_t>(slot));
  w.blob(value);
  SdMessage msg;
  msg.dst = home;
  msg.src_mgr = msg.dst_mgr = ManagerId::kAttractionMemory;
  msg.type = MsgType::kApplyParam;
  msg.payload = w.take();
  return site_.messages().send(std::move(msg));
}

void AttractionMemory::frame_became_executable(Microframe frame) {
  site_.trace(FrameEvent::kBecameExecutable, frame.id, frame.thread);
  site_.scheduling().on_executable(std::move(frame));
}

Result<Microframe> AttractionMemory::take_frame(FrameId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return Status::error(ErrorCode::kNotFound,
                         "frame " + std::to_string(id.value) + " not here");
  }
  Microframe f = std::move(it->second);
  frames_.erase(it);
  return f;
}

void AttractionMemory::park_param(GlobalAddress frame, std::size_t slot,
                                  std::vector<std::byte> value) {
  purge_stale_params();
  SDVM_DEBUG(site_.tag()) << "parking param for absent local frame "
                          << frame.value;
  pending_params_[frame].push_back(PendingParam{
      static_cast<std::uint32_t>(slot), std::move(value),
      site_.clock().now()});
}

void AttractionMemory::purge_stale_params() {
  const Nanos ttl = 8 * site_.config().failure_timeout;
  const Nanos now = site_.clock().now();
  for (auto& [fid, parked] : pending_params_) {
    std::erase_if(parked, [&](const PendingParam& p) {
      return now - p.parked_at > ttl;
    });
  }
  std::erase_if(pending_params_,
                [](const auto& kv) { return kv.second.empty(); });
}

void AttractionMemory::adopt_frame(Microframe frame) {
  site_.trace(FrameEvent::kAdopted, frame.id, frame.thread);
  if (auto parked = pending_params_.extract(frame.id); !parked.empty()) {
    for (PendingParam& p : parked.mapped()) {
      Status st = frame.apply(p.slot, std::move(p.value));
      if (!st.is_ok()) {
        SDVM_WARN(site_.tag()) << "parked param for frame "
                               << frame.id.value
                               << " rejected: " << st.to_string();
      } else {
        ++params_applied;
        site_.trace(FrameEvent::kParamApplied, frame.id, frame.thread);
      }
    }
  }
  if (frame.executable()) {
    frame.state = FrameState::kExecutable;
    frame_became_executable(std::move(frame));
  } else {
    frames_.emplace(frame.id, std::move(frame));
  }
}

// ---------------------------------------------------------------------------
// Global memory objects
// ---------------------------------------------------------------------------

GlobalAddress AttractionMemory::alloc_object(ProgramId pid,
                                             std::int64_t nwords) {
  GlobalAddress addr(site_.id(), next_local_id_++);
  MemObject obj;
  obj.addr = addr;
  obj.program = pid;
  obj.words.assign(static_cast<std::size_t>(std::max<std::int64_t>(nwords, 0)),
                   0);
  objects_.emplace(addr, std::move(obj));

  const std::uint32_t s = shard_of(addr);
  if (shard_authoritative(s)) {
    // is_local fast path: we hold the shard lease, register in place.
    auto& entry = directory_[addr];
    entry.owner = site_.id();
    entry.program = pid;
    return addr;
  }
  SiteId route = route_of(s);
  if (route == site_.id() || route == kInvalidSite) {
    // Authority is (about to be) ours or unknown: defer to the tick.
    pending_registers_.push_back(ShardDirEntry{addr, site_.id(), pid});
  } else {
    send_register(addr, pid, site_.id(), route, 0);
  }
  return addr;
}

MemObject* AttractionMemory::local_object(GlobalAddress addr) {
  auto it = objects_.find(addr);
  return it == objects_.end() ? nullptr : &it->second;
}

bool AttractionMemory::owns(GlobalAddress addr) const {
  return objects_.contains(addr);
}

void AttractionMemory::install_object(MemObject obj) {
  GlobalAddress addr = obj.addr;
  ProgramId pid = obj.program;
  objects_[addr] = std::move(obj);
  if (shard_authoritative(shard_of(addr))) {
    auto& entry = directory_[addr];
    entry.owner = site_.id();
    entry.program = pid;
  }
}

void AttractionMemory::evict_object(GlobalAddress addr) {
  objects_.erase(addr);
}

void AttractionMemory::set_directory_owner(GlobalAddress addr, SiteId owner) {
  directory_[addr].owner = owner;
}

SiteId AttractionMemory::directory_owner(GlobalAddress addr) const {
  ++directory_lookups;
  auto it = directory_.find(addr);
  return it == directory_.end() ? kInvalidSite : it->second.owner;
}

Result<MemObject*> AttractionMemory::attract(
    GlobalAddress addr, std::shared_ptr<FetchState>* wait) {
  if (auto* obj = local_object(addr); obj != nullptr) {
    ++local_hits;
    return obj;
  }

  if (sim_fetch_) {
    // Sim mode: the oracle migrates the object here immediately and
    // reports the modeled round-trip stall.
    ++remote_fetches;
    MemObject obj;
    auto stall = sim_fetch_(addr, &obj);
    if (!stall.is_ok()) return stall.status();
    sim_stall_ += stall.value();
    ++migrations_in;
    install_object(std::move(obj));
    return local_object(addr);
  }

  // Threaded modes: park on (or start) a fetch.
  auto it = fetching_.find(addr);
  if (it == fetching_.end()) {
    ++remote_fetches;
    it = fetching_.emplace(addr, std::make_shared<FetchState>()).first;
    begin_fetch(addr);
  }
  *wait = it->second;
  return Status::error(ErrorCode::kUnavailable, "fetch in progress");
}

void AttractionMemory::begin_fetch(GlobalAddress addr) {
  const std::uint32_t s = shard_of(addr);

  if (shard_authoritative(s)) {
    // is_local fast path: we mediate this shard ourselves.
    auto dit = directory_.find(addr);
    if (dit == directory_.end()) {
      // The registration may still be in flight (alloc races the first
      // fetch) or a rebuild is filling the shard in: park, the TTL purge
      // answers not-found if it never materializes.
      park_local_fetch(addr);
      return;
    }
    Waiter w;
    w.requester = site_.id();
    w.local = fetching_[addr];
    dit->second.waiters.push_back(std::move(w));
    grant_next(addr);
    return;
  }

  SiteId route = route_of(s);
  if (route == site_.id() || route == kInvalidSite) {
    // Authority is moving to us (handoff/rebuild pending) or the view is
    // empty: park until the lease settles.
    park_local_fetch(addr);
    return;
  }

  ShardRoutedRequest header{addr, s, leases_[s].epoch};
  ByteWriter w;
  header.serialize(w);
  SdMessage req;
  req.dst = route;
  req.src_mgr = req.dst_mgr = ManagerId::kAttractionMemory;
  req.type = MsgType::kObjectRequest;
  req.payload = w.take();
  (void)site_.messages().request(req, [this, addr](Result<SdMessage> r) {
    if (!fetching_.contains(addr)) return;
    if (r.is_ok() && r.value().type == MsgType::kShardStale) {
      // Routed to a non-authoritative site: merge its lease knowledge and
      // re-route (bounded). Stale authority is never silently served.
      try {
        ByteReader rd(r.value().payload);
        auto st = ShardStale::deserialize(rd);
        if (st.is_ok()) {
          merge_lease(st.value().shard, st.value().holder, st.value().epoch);
        }
      } catch (const DecodeError&) {
      }
      retry_fetch(addr, "shard route stale");
      return;
    }
    if (!r.is_ok()) {
      // Holder died mid-request; the takeover protocol elects a successor.
      retry_fetch(addr, r.status().message());
      return;
    }
    if (r.value().type != MsgType::kObjectGrant) {
      auto node = fetching_.extract(addr);
      fetch_retries_.erase(addr);
      if (!node.empty()) {
        node.mapped()->signal(
            Status::error(ErrorCode::kNotFound, "object miss"));
      }
      return;
    }
    ByteReader rd(r.value().payload);
    auto obj = MemObject::deserialize(rd);
    auto node = fetching_.extract(addr);
    fetch_retries_.erase(addr);
    if (node.empty()) return;
    if (!obj.is_ok()) {
      node.mapped()->signal(obj.status());
      return;
    }
    ++migrations_in;
    install_object(std::move(obj).value());
    node.mapped()->signal(Status::ok());
  });
}

void AttractionMemory::retry_fetch(GlobalAddress addr,
                                   const std::string& why) {
  constexpr int kMaxFetchRetries = 32;
  int& n = fetch_retries_[addr];
  if (++n > kMaxFetchRetries) {
    fetch_retries_.erase(addr);
    auto node = fetching_.extract(addr);
    if (!node.empty()) {
      node.mapped()->signal(Status::error(
          ErrorCode::kUnavailable, "object fetch failed: " + why));
    }
    return;
  }
  // Back off one help-retry interval: lease announcements and takeovers
  // need a moment to converge after churn; spinning would exhaust the
  // retry budget before they do.
  site_.schedule_after(site_.config().help_retry_interval, [this, addr] {
    if (fetching_.contains(addr)) begin_fetch(addr);
  });
}

Result<std::int64_t> AttractionMemory::try_read_word(
    GlobalAddress addr, std::int64_t index,
    std::shared_ptr<FetchState>* wait) {
  auto obj = attract(addr, wait);
  if (!obj.is_ok()) return obj.status();
  auto& words = obj.value()->words;
  if (index < 0 || static_cast<std::size_t>(index) >= words.size()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "memory index out of range");
  }
  return words[static_cast<std::size_t>(index)];
}

Status AttractionMemory::try_write_word(GlobalAddress addr,
                                        std::int64_t index, std::int64_t value,
                                        std::shared_ptr<FetchState>* wait) {
  auto obj = attract(addr, wait);
  if (!obj.is_ok()) return obj.status();
  auto& words = obj.value()->words;
  if (index < 0 || static_cast<std::size_t>(index) >= words.size()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "memory index out of range");
  }
  words[static_cast<std::size_t>(index)] = value;
  return Status::ok();
}

void AttractionMemory::grant_next(GlobalAddress addr) {
  auto dit = directory_.find(addr);
  if (dit == directory_.end()) return;
  DirEntry& d = dit->second;
  if (d.waiters.empty()) return;

  if (d.owner == site_.id() && owns(addr)) {
    Waiter w = std::move(d.waiters.front());
    d.waiters.pop_front();

    if (w.requester == site_.id()) {
      // Our own fetch: object is already local.
      fetching_.erase(addr);
      if (w.local) w.local->signal(Status::ok());
    } else {
      MemObject* obj = local_object(addr);
      ByteWriter bw;
      obj->serialize(bw);
      evict_object(addr);
      d.owner = w.requester;
      ++migrations_out;
      SdMessage grant;
      grant.dst = w.requester;
      grant.src_mgr = grant.dst_mgr = ManagerId::kAttractionMemory;
      grant.type = MsgType::kObjectGrant;
      grant.reply_to = w.reply_seq;
      grant.payload = bw.take();
      (void)site_.messages().send(std::move(grant));
    }
    if (!d.waiters.empty()) grant_next(addr);
    return;
  }

  if (d.recall_in_flight) return;
  d.recall_in_flight = true;

  ByteWriter bw;
  bw.address(addr);
  SdMessage recall;
  recall.dst = site_.cluster().resolve_successor(d.owner);
  recall.src_mgr = recall.dst_mgr = ManagerId::kAttractionMemory;
  recall.type = MsgType::kObjectRecall;
  recall.payload = bw.take();
  (void)site_.messages().request(recall, [this, addr](Result<SdMessage> r) {
    auto dit2 = directory_.find(addr);
    if (dit2 == directory_.end()) {
      // The shard was handed off mid-recall. Don't drop a returned object:
      // keep it here and re-register with the current shard holder.
      if (r.is_ok() && r.value().type == MsgType::kObjectReturn) {
        ByteReader rd(r.value().payload);
        auto obj = MemObject::deserialize(rd);
        if (obj.is_ok()) {
          ProgramId pid = obj.value().program;
          install_object(std::move(obj).value());
          const std::uint32_t s = shard_of(addr);
          if (!shard_authoritative(s)) {
            SiteId route = route_of(s);
            if (route != site_.id() && route != kInvalidSite) {
              send_register(addr, pid, site_.id(), route, 0);
            } else {
              pending_registers_.push_back(
                  ShardDirEntry{addr, site_.id(), pid});
            }
          }
        }
      }
      return;
    }
    DirEntry& d2 = dit2->second;
    d2.recall_in_flight = false;

    if (!r.is_ok() || r.value().type != MsgType::kObjectReturn) {
      // Owner dead or object lost; recovery (if enabled) will restore it.
      Status failure = r.is_ok()
                           ? Status::error(ErrorCode::kNotFound, "object lost")
                           : r.status();
      auto waiters = std::move(d2.waiters);
      d2.waiters.clear();
      for (auto& w : waiters) {
        if (w.requester == site_.id()) {
          fetching_.erase(addr);
          if (w.local) w.local->signal(failure);
        } else {
          SdMessage miss;
          miss.dst = w.requester;
          miss.src_mgr = miss.dst_mgr = ManagerId::kAttractionMemory;
          miss.type = MsgType::kObjectMiss;
          miss.reply_to = w.reply_seq;
          (void)site_.messages().send(std::move(miss));
        }
      }
      return;
    }

    ByteReader rd(r.value().payload);
    auto obj = MemObject::deserialize(rd);
    if (!obj.is_ok()) return;
    install_object(std::move(obj).value());
    d2.owner = site_.id();
    grant_next(addr);
  });
}

void AttractionMemory::handle(const SdMessage& msg) {
  switch (msg.type) {
    case MsgType::kApplyParam: {
      try {
        ByteReader r(msg.payload);
        GlobalAddress frame = r.address();
        std::uint32_t slot = r.u32();
        auto value = r.blob();
        (void)apply_param(frame, slot, std::move(value));
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kObjectRequest:
      process_object_request(msg, site_.clock().now());
      break;
    case MsgType::kObjectRecall: {
      try {
        ByteReader r(msg.payload);
        GlobalAddress addr = r.address();
        SdMessage reply;
        reply.src_mgr = reply.dst_mgr = ManagerId::kAttractionMemory;
        if (MemObject* obj = local_object(addr); obj != nullptr) {
          ByteWriter bw;
          obj->serialize(bw);
          evict_object(addr);
          ++migrations_out;
          reply.type = MsgType::kObjectReturn;
          reply.payload = bw.take();
        } else {
          reply.type = MsgType::kObjectMiss;
        }
        (void)site_.messages().respond(msg, std::move(reply));
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kObjectGrant:
    case MsgType::kObjectReturn: {
      // Unsolicited grant/return: addressed to a site that signed off (or
      // lost the shard) before it arrived, relayed here. Keep the object;
      // if we mediate its shard, update the directory, otherwise tell the
      // current shard holder that we physically hold it now.
      try {
        ByteReader r(msg.payload);
        auto obj = MemObject::deserialize(r);
        if (obj.is_ok()) {
          GlobalAddress addr = obj.value().addr;
          ProgramId pid = obj.value().program;
          install_object(std::move(obj).value());
          const std::uint32_t s = shard_of(addr);
          if (shard_authoritative(s)) {
            directory_[addr].owner = site_.id();
            grant_next(addr);
          } else {
            SiteId route = route_of(s);
            if (route != site_.id() && route != kInvalidSite) {
              send_register(addr, pid, site_.id(), route, 0);
            } else {
              pending_registers_.push_back(
                  ShardDirEntry{addr, site_.id(), pid});
            }
          }
        }
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kShardLease: {
      try {
        ByteReader r(msg.payload);
        auto a = ShardLeaseAnnounce::deserialize(r);
        if (a.is_ok()) {
          for (const auto& e : a.value().entries) {
            merge_lease(e.shard, e.holder, e.epoch);
          }
        }
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kShardHandoff: {
      try {
        ByteReader r(msg.payload);
        auto h = ShardHandoff::deserialize(r);
        if (!h.is_ok()) break;
        const std::uint32_t s = h.value().shard;
        if (h.value().epoch < leases_[s].epoch) break;  // superseded
        leases_[s] = ShardLease{site_.id(), h.value().epoch};
        max_epoch_seen_[s] =
            std::max(max_epoch_seen_[s], h.value().epoch);
        for (const ShardDirEntry& e : h.value().entries) {
          auto& entry = directory_[e.addr];
          if (entry.owner == kInvalidSite) {
            entry.owner = e.owner;
            entry.program = e.program;
          }
        }
        announce_leases({{s, site_.id(), h.value().epoch}});
        SDVM_DEBUG(site_.tag())
            << "shard " << s << " handed off to us at epoch "
            << h.value().epoch << " (" << h.value().entries.size()
            << " entries)";
        drain_parked(s);
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kShardRecover: {
      try {
        ByteReader r(msg.payload);
        auto rec = ShardRecover::deserialize(r);
        if (!rec.is_ok()) break;
        const std::uint32_t s = rec.value().shard;
        merge_lease(s, msg.src, rec.value().epoch);
        ShardRecoverReply reply{s, rec.value().epoch, {}};
        for (const auto& [addr, obj] : objects_) {
          if (shard_of(addr) == s) {
            reply.entries.push_back(
                ShardDirEntry{addr, site_.id(), obj.program});
          }
        }
        // Stale directory entries we still held for the shard travel to
        // the rebuilding holder and are dropped here.
        if (!shard_authoritative(s)) {
          for (auto it = directory_.begin(); it != directory_.end();) {
            if (shard_of(it->first) == s) {
              if (!owns(it->first)) {
                reply.entries.push_back(ShardDirEntry{
                    it->first, it->second.owner, it->second.program});
              }
              it = directory_.erase(it);
            } else {
              ++it;
            }
          }
        }
        ByteWriter w;
        reply.serialize(w);
        SdMessage out;
        out.src_mgr = out.dst_mgr = ManagerId::kAttractionMemory;
        out.type = MsgType::kShardRecoverReply;
        out.payload = w.take();
        (void)site_.messages().respond(msg, std::move(out));
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kShardRecoverReply: {
      // Unsolicited (relayed after a sign-off): merge like a register batch
      // if we are authoritative for the shard.
      try {
        ByteReader r(msg.payload);
        auto rep = ShardRecoverReply::deserialize(r);
        if (!rep.is_ok()) break;
        const std::uint32_t s = rep.value().shard;
        if (!shard_authoritative(s)) break;
        for (const ShardDirEntry& e : rep.value().entries) {
          auto& entry = directory_[e.addr];
          if (entry.owner == kInvalidSite ||
              (e.owner == msg.src && entry.owner != e.owner)) {
            entry.owner = e.owner;
            entry.program = e.program;
          }
        }
        drain_parked(s);
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kShardRegister:
      process_register(msg, site_.clock().now());
      break;
    case MsgType::kShardStale: {
      // Unsolicited stale notice (e.g. a redirect for a waiter whose
      // request already completed): absorb the lease knowledge.
      try {
        ByteReader r(msg.payload);
        auto st = ShardStale::deserialize(r);
        if (st.is_ok()) {
          merge_lease(st.value().shard, st.value().holder,
                      st.value().epoch);
        }
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kDirectoryImport: {
      try {
        ByteReader r(msg.payload);
        // Program descriptions first, so adopted frames resolve.
        std::uint32_t nprogs = r.count(/*min_bytes_each=*/8);
        for (std::uint32_t i = 0; i < nprogs; ++i) {
          auto info = ProgramInfo::deserialize(r);
          if (info.is_ok() &&
              site_.programs().find(info.value().id) == nullptr) {
            site_.programs().register_info(info.value());
          }
        }
        // Queued executable frames go straight to our scheduler.
        std::uint32_t nqueued = r.count(/*min_bytes_each=*/8);
        for (std::uint32_t i = 0; i < nqueued; ++i) {
          auto f = Microframe::deserialize(r);
          if (f.is_ok()) adopt_frame(std::move(f).value());
        }
        restore_snapshot(r);
        std::uint32_t nsources = r.count(/*min_bytes_each=*/8);
        for (std::uint32_t i = 0; i < nsources; ++i) {
          ProgramId spid = r.program();
          MicrothreadId tid = r.u32();
          std::string src = r.str();
          site_.code().import_sources(spid, {{tid, std::move(src)}});
        }
        SDVM_INFO(site_.tag()) << "absorbed state from signing-off site "
                               << msg.src;
      } catch (const DecodeError&) {
      }
      break;
    }
    default:
      SDVM_WARN(site_.tag()) << "attraction memory: unexpected "
                             << to_string(msg.type);
  }
}

// ---------------------------------------------------------------------------
// Bulk state movement: checkpoints and graceful sign-off
// ---------------------------------------------------------------------------

std::vector<std::byte> AttractionMemory::snapshot(ProgramId pid) const {
  bool all = !pid.valid();
  ByteWriter w;

  std::uint32_t nframes = 0;
  for (const auto& [id, f] : frames_) {
    if (all || f.program == pid) ++nframes;
  }
  w.u32(nframes);
  for (const auto& [id, f] : frames_) {
    if (all || f.program == pid) f.serialize(w);
  }

  std::uint32_t nobjs = 0;
  for (const auto& [addr, o] : objects_) {
    if (all || o.program == pid) ++nobjs;
  }
  w.u32(nobjs);
  for (const auto& [addr, o] : objects_) {
    if (all || o.program == pid) o.serialize(w);
  }

  // Directory entries homed here (owner field only; waiter queues are
  // transient and empty at quiescence).
  std::uint32_t ndir = 0;
  for (const auto& [addr, d] : directory_) {
    if (all || d.program == pid) ++ndir;
  }
  w.u32(ndir);
  for (const auto& [addr, d] : directory_) {
    if (all || d.program == pid) {
      w.address(addr);
      w.site(d.owner);
      w.program(d.program);
    }
  }
  return w.take();
}

void AttractionMemory::restore_snapshot(ByteReader& r) {
  std::uint32_t nframes = r.count(/*min_bytes_each=*/8);
  for (std::uint32_t i = 0; i < nframes; ++i) {
    auto f = Microframe::deserialize(r);
    if (!f.is_ok()) throw DecodeError("bad frame in snapshot");
    adopt_frame(std::move(f).value());
  }
  std::uint32_t nobjs = r.count(/*min_bytes_each=*/8);
  for (std::uint32_t i = 0; i < nobjs; ++i) {
    auto o = MemObject::deserialize(r);
    if (!o.is_ok()) throw DecodeError("bad object in snapshot");
    objects_[o.value().addr] = std::move(o).value();
  }
  std::uint32_t ndir = r.count(/*min_bytes_each=*/8);
  for (std::uint32_t i = 0; i < ndir; ++i) {
    GlobalAddress addr = r.address();
    SiteId owner = r.site();
    ProgramId pid = r.program();
    const std::uint32_t s = shard_of(addr);
    if (shard_authoritative(s)) {
      auto& entry = directory_[addr];
      if (entry.owner == kInvalidSite) {
        entry.owner = owner;
        entry.program = pid;
      }
      continue;
    }
    // Restored from a checkpoint (or an import blob) on a site that does
    // not mediate this shard: route the entry to the current holder. This
    // is how a handed-off shard survives a cold restart — recovery lands
    // the entries wherever the lease now lives.
    SiteId route = route_of(s);
    if (route != site_.id() && route != kInvalidSite) {
      send_register(addr, pid, owner, route, 0);
    } else {
      pending_registers_.push_back(ShardDirEntry{addr, owner, pid});
    }
  }
}

void AttractionMemory::relocate_all_to(SiteId successor) {
  // Shard authority leaves first, as a first-class handoff per shard:
  // entries transfer to each shard's rendezvous target with a bumped
  // epoch, so the import blob below carries no directory state and no
  // other site ever sees two authoritative answers. The successor gets
  // the shards whose target it is; others go where they belong.
  {
    std::vector<SiteId> live = site_.cluster().known_sites(true);
    std::erase(live, site_.id());
    std::vector<ShardLeaseAnnounce::Entry> announce;
    for (std::uint32_t s = 0; s < kNumShards; ++s) {
      if (leases_[s].holder != site_.id()) continue;
      SiteId tgt = shard_target(s, live);
      if (tgt == kInvalidSite) tgt = successor;
      graceful_handoff(s, tgt, &announce);
    }
    if (!announce.empty()) announce_leases(announce);
  }
  // Entries restored here while the route was unresolved flush to their
  // holders now (best effort; the register messages are forwardable).
  flush_pending_registers();
  for (const ShardDirEntry& e : pending_registers_) {
    send_register(e.addr, e.program, e.owner, successor, 0);
  }
  pending_registers_.clear();

  // Objects we physically hold ride the import blob to the successor.
  // Shard holders' entries keep naming this (departed) site as owner;
  // recalls reach the successor through the sign-off successor chain.

  // Everything homed/owned here — frames, objects, directory — plus the
  // scheduler's queued frames and the program descriptions the successor
  // may lack, shipped as one import blob.
  ByteWriter w;

  auto queued = site_.scheduling().snapshot_frames(ProgramId{});
  // Queued executable frames ride along as ordinary executable frames.
  // They are appended to the frame section by temporarily adopting them.
  // (Serialize directly instead.)
  // -- program infos --
  std::vector<ProgramId> pids = site_.programs().active_programs();
  w.u32(static_cast<std::uint32_t>(pids.size()));
  for (ProgramId pid : pids) {
    site_.programs().find(pid)->serialize(w);
  }
  // -- queued frames --
  w.u32(static_cast<std::uint32_t>(queued.size()));
  for (const auto& f : queued) f.serialize(w);
  // -- memory snapshot --
  auto snap = snapshot(ProgramId{});
  w.raw(snap.data(), snap.size());
  // -- code sources --
  // The home is implicitly a code distribution site; if that role has
  // migrated here through a successor chain, hand it on too. Otherwise a
  // cluster whose original members all departed gracefully ends up with
  // live frames and no site able to serve their code.
  std::vector<std::tuple<ProgramId, MicrothreadId, std::string>> sources;
  for (ProgramId pid : pids) {
    for (auto& [tid, src] : site_.code().export_sources(pid)) {
      sources.emplace_back(pid, tid, std::move(src));
    }
  }
  w.u32(static_cast<std::uint32_t>(sources.size()));
  for (const auto& [pid, tid, src] : sources) {
    w.program(pid);
    w.u32(tid);
    w.str(src);
  }

  SdMessage imp;
  imp.dst = successor;
  imp.src_mgr = imp.dst_mgr = ManagerId::kAttractionMemory;
  imp.type = MsgType::kDirectoryImport;
  imp.payload = w.take();
  (void)site_.messages().send(std::move(imp));

  site_.scheduling().clear_program_frames(ProgramId{});
  frames_.clear();
  objects_.clear();
  directory_.clear();

  // Parked results ride along too: their frames are in the import blob
  // above, so re-address each one to the successor (re-parked there if it
  // outruns the import).
  for (auto& [fid, parked] : pending_params_) {
    for (PendingParam& p : parked) {
      ByteWriter pw;
      pw.address(fid);
      pw.u32(p.slot);
      pw.blob(p.value);
      SdMessage pm;
      pm.dst = successor;
      pm.src_mgr = pm.dst_mgr = ManagerId::kAttractionMemory;
      pm.type = MsgType::kApplyParam;
      pm.payload = pw.take();
      (void)site_.messages().send(std::move(pm));
    }
  }
  pending_params_.clear();
}

void AttractionMemory::drop_program(ProgramId pid) {
  std::erase_if(frames_,
                [&](const auto& kv) { return kv.second.program == pid; });
  std::vector<GlobalAddress> dead_objects;
  for (const auto& [addr, obj] : objects_) {
    if (obj.program == pid) dead_objects.push_back(addr);
  }
  for (auto addr : dead_objects) {
    objects_.erase(addr);
  }
  std::erase_if(directory_,
                [&](const auto& kv) { return kv.second.program == pid; });
  std::erase_if(pending_registers_,
                [&](const ShardDirEntry& e) { return e.program == pid; });
}

// ---------------------------------------------------------------------------
// Sharded directory: leases, routing, handoff, crash rebuild
// ---------------------------------------------------------------------------

bool AttractionMemory::site_alive(SiteId id) const {
  if (id == site_.id()) return true;
  const SiteInfo* info = site_.cluster().find(id);
  return info != nullptr && info->alive;
}

std::size_t AttractionMemory::shards_held() const {
  std::size_t n = 0;
  for (const ShardLease& l : leases_) {
    if (l.holder == site_.id()) ++n;
  }
  return n;
}

bool AttractionMemory::shard_authoritative(std::uint32_t shard) const {
  if (shard >= kNumShards) return false;
  if (leases_[shard].holder != site_.id()) return false;
  // Split-brain guard: renewal is the maintenance tick itself. A holder
  // whose tick has stalled past the lease TTL cannot have renewed — by
  // then the failure detector has declared it dead and a successor holds
  // the shard at a higher epoch — so it must stop answering.
  if (site_.cluster().cluster_size() > 1 && last_shard_tick_ > 0 &&
      site_.clock().now() - last_shard_tick_ >
          4 * site_.config().failure_timeout) {
    return false;
  }
  return true;
}

void AttractionMemory::reconcile_targets() {
  if (!shard_view_dirty_) return;
  const std::vector<SiteId> live = site_.cluster().known_sites(true);
  shard_view_has_self_ =
      std::find(live.begin(), live.end(), site_.id()) != live.end();
  shard_view_lowest_ =
      live.empty() ? site_.id() : *std::min_element(live.begin(), live.end());
  // A view missing our own entry is a joiner's partial snapshot. Keep the
  // view dirty so every settle re-reads membership until we appear in it.
  shard_view_dirty_ = !shard_view_has_self_;
  for (std::uint32_t s = 0; s < kNumShards; ++s) {
    targets_[s] = shard_target(s, live);
  }
}

SiteId AttractionMemory::route_of(std::uint32_t shard) {
  const ShardLease& l = leases_[shard];
  if (l.holder != kInvalidSite &&
      (l.holder == site_.id() || site_alive(l.holder))) {
    return l.holder;
  }
  reconcile_targets();
  return targets_[shard];
}

SiteId AttractionMemory::shard_route(GlobalAddress addr) {
  return route_of(shard_of(addr));
}

std::uint64_t AttractionMemory::next_epoch(std::uint32_t shard) const {
  const std::uint64_t seen =
      std::max(max_epoch_seen_[shard], leases_[shard].epoch);
  // Saturate instead of wrapping: a wrapped epoch would un-order every
  // lease comparison (fuzzed payloads do carry UINT64_MAX).
  constexpr auto kMax = std::numeric_limits<std::uint64_t>::max();
  return seen == kMax ? seen : seen + 1;
}

bool AttractionMemory::merge_lease(std::uint32_t s, SiteId holder,
                                   std::uint64_t epoch) {
  if (s >= kNumShards) return false;
  max_epoch_seen_[s] = std::max(max_epoch_seen_[s], epoch);
  if (holder == kInvalidSite) return false;
  ShardLease& cur = leases_[s];
  if (cur.holder == holder && cur.epoch >= epoch) return false;
  bool supersedes = epoch > cur.epoch || cur.holder == kInvalidSite ||
                    (epoch == cur.epoch && holder < cur.holder);
  // A live claimant beats a dead incumbent at any epoch: two independent
  // takeovers can collide (the first claimant dies before its announce
  // spreads, so its successor elects with an equal or even lower epoch).
  // Ids are never reused and death is terminal, so the dead incumbent can
  // never serve again — preferring the survivor converges on reality, and
  // max_epoch_seen_ keeps future elections past every epoch ever observed.
  if (!supersedes && !site_alive(cur.holder) && site_alive(holder)) {
    supersedes = true;
  }
  if (!supersedes) return false;
  const bool lost = cur.holder == site_.id() && holder != site_.id();
  if (lost && site_.config().test_stale_lease_serve) {
    // Seeded bug (exploration canary): ignore the superseding claim and
    // keep serving the shard from the stale lease.
    return false;
  }
  cur = ShardLease{holder, epoch};
  if (lost) abdicate_to(s, holder, epoch);
  drain_parked(s);
  return true;
}

void AttractionMemory::announce_leases(
    const std::vector<ShardLeaseAnnounce::Entry>& entries) {
  if (entries.empty()) return;
  ShardLeaseAnnounce a{entries};
  ByteWriter w;
  a.serialize(w);
  const std::vector<std::byte> payload = w.take();
  std::vector<SdMessage> burst;
  for (SiteId id : site_.cluster().known_sites(true)) {
    if (id == site_.id()) continue;
    SdMessage m;
    m.dst = id;
    m.src_mgr = m.dst_mgr = ManagerId::kAttractionMemory;
    m.type = MsgType::kShardLease;
    m.payload = payload;
    burst.push_back(std::move(m));
  }
  (void)site_.messages().send_burst(std::move(burst));
}

std::vector<ShardDirEntry> AttractionMemory::strip_shard(
    std::uint32_t s, SiteId new_holder, std::uint64_t epoch) {
  std::vector<ShardDirEntry> out;
  std::vector<GlobalAddress> refetch;
  for (auto it = directory_.begin(); it != directory_.end();) {
    if (shard_of(it->first) != s) {
      ++it;
      continue;
    }
    out.push_back(
        ShardDirEntry{it->first, it->second.owner, it->second.program});
    for (const Waiter& w : it->second.waiters) {
      if (w.requester == site_.id()) {
        refetch.push_back(it->first);
        continue;
      }
      // Waiters move with the shard: redirect the requester at the new
      // holder instead of leaving its request dangling here.
      ShardStale st{s, new_holder, epoch};
      ByteWriter bw;
      st.serialize(bw);
      SdMessage m;
      m.dst = w.requester;
      m.src_mgr = m.dst_mgr = ManagerId::kAttractionMemory;
      m.type = MsgType::kShardStale;
      m.reply_to = w.reply_seq;
      m.payload = bw.take();
      (void)site_.messages().send(std::move(m));
    }
    it = directory_.erase(it);
  }
  for (GlobalAddress a : refetch) {
    if (fetching_.contains(a)) begin_fetch(a);
  }
  return out;
}

void AttractionMemory::graceful_handoff(
    std::uint32_t s, SiteId target,
    std::vector<ShardLeaseAnnounce::Entry>* announce) {
  const std::uint64_t epoch = next_epoch(s);
  ++shard_handoffs;
  ShardHandoff h;
  h.shard = s;
  h.epoch = epoch;
  if (site_.config().test_stale_lease_serve) {
    // Seeded bug: ship the entries but keep the lease claim and the local
    // entries — split authority the invariants must catch.
    for (const auto& [addr, d] : directory_) {
      if (shard_of(addr) == s) {
        h.entries.push_back(ShardDirEntry{addr, d.owner, d.program});
      }
    }
  } else {
    max_epoch_seen_[s] = epoch;
    leases_[s] = ShardLease{target, epoch};
    h.entries = strip_shard(s, target, epoch);
  }
  ByteWriter w;
  h.serialize(w);
  SdMessage m;
  m.dst = target;
  m.src_mgr = m.dst_mgr = ManagerId::kAttractionMemory;
  m.type = MsgType::kShardHandoff;
  m.payload = w.take();
  (void)site_.messages().send(std::move(m));
  if (announce) announce->push_back({s, target, epoch});
  SDVM_DEBUG(site_.tag()) << "handed shard " << s << " to site " << target
                          << " at epoch " << epoch;
}

void AttractionMemory::abdicate_to(std::uint32_t s, SiteId winner,
                                   std::uint64_t epoch) {
  // We lost the lease to a higher-epoch claim: our entries belong to the
  // winner. Ship them as a handoff at the winner's epoch (the receive path
  // merges, existing entries win) and answer nothing more for the shard.
  std::vector<ShardDirEntry> entries = strip_shard(s, winner, epoch);
  if (!entries.empty()) {
    ++shard_handoffs;
    ShardHandoff h{s, epoch, std::move(entries)};
    ByteWriter w;
    h.serialize(w);
    SdMessage m;
    m.dst = winner;
    m.src_mgr = m.dst_mgr = ManagerId::kAttractionMemory;
    m.type = MsgType::kShardHandoff;
    m.payload = w.take();
    (void)site_.messages().send(std::move(m));
  }
}

void AttractionMemory::take_over_shard(std::uint32_t s, bool rebuild) {
  const std::uint64_t epoch = next_epoch(s);
  leases_[s] = ShardLease{site_.id(), epoch};
  max_epoch_seen_[s] = epoch;
  announce_leases({{s, site_.id(), epoch}});
  SDVM_DEBUG(site_.tag()) << "took over shard " << s << " at epoch " << epoch
                          << (rebuild ? " (rebuilding)" : "");
  if (rebuild) {
    begin_rebuild(s);
  } else {
    drain_parked(s);
  }
}

void AttractionMemory::begin_rebuild(std::uint32_t s) {
  ShardRebuild& rb = rebuilds_[s];
  rb.active = true;
  rb.started_at = site_.clock().now();
  rb.epoch = leases_[s].epoch;
  rb.awaiting = 0;
  // Seed from what we physically hold, then ask every live site to
  // re-register its objects of the shard.
  for (const auto& [addr, obj] : objects_) {
    if (shard_of(addr) != s) continue;
    auto& e = directory_[addr];
    if (e.owner == kInvalidSite) {
      e.owner = site_.id();
      e.program = obj.program;
    }
  }
  ShardRecover rec{s, rb.epoch};
  ByteWriter w;
  rec.serialize(w);
  const std::vector<std::byte> payload = w.take();
  for (SiteId id : site_.cluster().known_sites(true)) {
    if (id == site_.id()) continue;
    SdMessage m;
    m.dst = id;
    m.src_mgr = m.dst_mgr = ManagerId::kAttractionMemory;
    m.type = MsgType::kShardRecover;
    m.payload = payload;
    ++rb.awaiting;
    (void)site_.messages().request(
        std::move(m), [this, s, epoch = rb.epoch](Result<SdMessage> r) {
          ShardRebuild& rb2 = rebuilds_[s];
          if (!rb2.active || rb2.epoch != epoch) return;
          if (r.is_ok() && r.value().type == MsgType::kShardRecoverReply) {
            try {
              ByteReader rd(r.value().payload);
              auto rep = ShardRecoverReply::deserialize(rd);
              if (rep.is_ok() && rep.value().shard == s &&
                  shard_authoritative(s)) {
                for (const ShardDirEntry& e : rep.value().entries) {
                  auto& entry = directory_[e.addr];
                  if (entry.owner == kInvalidSite ||
                      (e.owner == r.value().src && entry.owner != e.owner)) {
                    entry.owner = e.owner;
                    entry.program = e.program;
                  }
                }
              }
            } catch (const DecodeError&) {
            }
          }
          if (rb2.awaiting > 0) --rb2.awaiting;
          if (rb2.awaiting == 0) complete_rebuild(s);
        });
  }
  if (rb.awaiting == 0) complete_rebuild(s);
}

void AttractionMemory::complete_rebuild(std::uint32_t s) {
  ShardRebuild& rb = rebuilds_[s];
  if (!rb.active) return;
  rb.active = false;
  last_rebuild_ns_ = std::max<Nanos>(site_.clock().now() - rb.started_at, 0);
  SDVM_INFO(site_.tag()) << "shard " << s << " rebuilt in "
                         << last_rebuild_ns_ / 1'000'000 << " ms";
  drain_parked(s);
}

void AttractionMemory::settle_leases(bool announce_held) {
  // An orphaned lease (holder no longer alive) must be settled against a
  // current membership view: the cached targets may predate the death that
  // orphaned it, and electing against a stale view can wedge the shard
  // (computed successor = the dead site itself).
  for (const ShardLease& l : leases_) {
    if (l.holder != kInvalidSite && !site_alive(l.holder)) {
      shard_view_dirty_ = true;
      break;
    }
  }
  reconcile_targets();
  // A joiner whose live view does not yet include itself would compute
  // rendezvous targets over an incomplete membership and bounce freshly
  // received shards straight back (epoch ping-pong). Hold all lease moves
  // until the view contains us.
  if (!shard_view_has_self_) return;
  const SiteId self = site_.id();
  std::vector<ShardLeaseAnnounce::Entry> announce;
  for (std::uint32_t s = 0; s < kNumShards; ++s) {
    const ShardLease l = leases_[s];
    const SiteId tgt = targets_[s];
    if (l.holder == self) {
      // Consistent hashing remigration: hand the shard over iff the
      // rendezvous target moved away from us.
      if (tgt != self && tgt != kInvalidSite && site_alive(tgt)) {
        graceful_handoff(s, tgt, &announce);
      } else if (announce_held) {
        // Membership changed but the shard stays: re-announce it so a
        // joiner (which only ever saw deltas) converges on the full map.
        announce.push_back(ShardLeaseAnnounce::Entry{s, self, l.epoch});
      }
      continue;
    }
    const bool holder_gone =
        l.holder == kInvalidSite || !site_alive(l.holder);
    if (holder_gone && tgt != self && tgt != kInvalidSite &&
        l.holder != kInvalidSite && announce_held && site_alive(tgt)) {
      // The successor may be a joiner that never heard this lease (dead
      // holders cannot re-announce). Hand it our orphan knowledge so its
      // election runs at a proper epoch instead of being stuck: it cannot
      // bootstrap-elect (not lowest) and has nothing to succeed.
      ShardLeaseAnnounce a{{ShardLeaseAnnounce::Entry{s, l.holder, l.epoch}}};
      ByteWriter w;
      a.serialize(w);
      SdMessage m;
      m.dst = tgt;
      m.src_mgr = m.dst_mgr = ManagerId::kAttractionMemory;
      m.type = MsgType::kShardLease;
      m.payload = w.take();
      (void)site_.messages().send(std::move(m));
    }
    if (holder_gone && tgt == self) {
      // Deterministic successor election: every site computes the same
      // argmax, so exactly one elects itself. A fresh cluster (shard never
      // held) skips the rebuild; a crashed holder triggers it.
      const bool fresh = l.holder == kInvalidSite && l.epoch == 0 &&
                         max_epoch_seen_[s] == 0;
      // Only the lowest live site may bootstrap-elect a never-held shard:
      // a joiner's empty lease table looks identical to a fresh cluster,
      // and letting it claim epoch 1 while the real holder's announce is
      // still in flight creates a spurious competing authority.
      if (fresh && self != shard_view_lowest_) continue;
      take_over_shard(s, /*rebuild=*/!fresh);
    }
  }
  if (!announce.empty()) announce_leases(announce);
}

void AttractionMemory::on_membership_change() {
  shard_view_dirty_ = true;
  if (!site_.cluster().joined()) return;
  if (last_shard_tick_ == 0) last_shard_tick_ = site_.clock().now();
  settle_leases(/*announce_held=*/true);
}

void AttractionMemory::shard_tick() {
  if (!site_.cluster().joined()) return;
  last_shard_tick_ = site_.clock().now();
  settle_leases();
  // The tick is the renewal: it refreshes the currency that
  // shard_authoritative checks, riding the heartbeat cadence.
  const std::size_t held = shards_held();
  if (held > 0) lease_renewals += held;
  for (std::uint32_t s = 0; s < kNumShards; ++s) {
    ShardRebuild& rb = rebuilds_[s];
    if (rb.active &&
        last_shard_tick_ - rb.started_at > site_.config().failure_timeout) {
      // A contributor died mid-rebuild and will never reply.
      complete_rebuild(s);
    }
  }
  flush_pending_registers();
  purge_parked();
}

void AttractionMemory::send_register(GlobalAddress addr, ProgramId pid,
                                     SiteId owner, SiteId route,
                                     std::uint8_t hops) {
  ShardRegister reg{addr, pid, owner};
  ByteWriter w;
  reg.serialize(w);
  SdMessage m;
  m.dst = route;
  m.src_mgr = m.dst_mgr = ManagerId::kAttractionMemory;
  m.type = MsgType::kShardRegister;
  m.hops = hops;
  m.payload = w.take();
  (void)site_.messages().send(std::move(m));
}

void AttractionMemory::flush_pending_registers() {
  if (pending_registers_.empty()) return;
  std::vector<ShardDirEntry> keep;
  for (const ShardDirEntry& e : pending_registers_) {
    const std::uint32_t s = shard_of(e.addr);
    if (shard_authoritative(s)) {
      auto& entry = directory_[e.addr];
      if (entry.owner == kInvalidSite) {
        entry.owner = e.owner;
        entry.program = e.program;
      }
      continue;
    }
    const SiteId route = route_of(s);
    if (route != site_.id() && route != kInvalidSite) {
      send_register(e.addr, e.program, e.owner, route, 0);
    } else {
      keep.push_back(e);
    }
  }
  pending_registers_ = std::move(keep);
}

void AttractionMemory::reject_stale(const SdMessage& msg, std::uint32_t s) {
  ++stale_epoch_rejects;
  ShardStale st{s, kInvalidSite, 0};
  const ShardLease& l = leases_[s];
  if (l.holder != kInvalidSite && l.holder != site_.id() &&
      site_alive(l.holder)) {
    // Real lease knowledge: the requester can merge it.
    st.holder = l.holder;
    st.epoch = l.epoch;
  } else {
    // Best-effort hint only (epoch 0 so it never pollutes lease tables).
    reconcile_targets();
    st.holder = targets_[s];
  }
  ByteWriter w;
  st.serialize(w);
  SdMessage reply;
  reply.src_mgr = reply.dst_mgr = ManagerId::kAttractionMemory;
  reply.type = MsgType::kShardStale;
  reply.payload = w.take();
  (void)site_.messages().respond(msg, std::move(reply));
}

void AttractionMemory::park_remote(const SdMessage& msg, std::uint32_t s,
                                   Nanos parked_at) {
  auto& q = parked_remote_[s];
  if (q.size() >= 4096) {
    // Overload guard: answer miss instead of queueing without bound.
    if (msg.type == MsgType::kObjectRequest) {
      SdMessage miss;
      miss.src_mgr = miss.dst_mgr = ManagerId::kAttractionMemory;
      miss.type = MsgType::kObjectMiss;
      (void)site_.messages().respond(msg, std::move(miss));
    }
    return;
  }
  q.push_back(ParkedShardMsg{msg, parked_at});
}

void AttractionMemory::park_local_fetch(GlobalAddress addr) {
  // emplace keeps the original parked_at on a re-park, so the TTL is
  // measured from the first attempt.
  parked_local_.emplace(addr, site_.clock().now());
}

void AttractionMemory::drain_parked(std::uint32_t s) {
  if (!parked_remote_[s].empty()) {
    std::deque<ParkedShardMsg> q;
    q.swap(parked_remote_[s]);
    for (ParkedShardMsg& p : q) {
      if (p.msg.type == MsgType::kObjectRequest) {
        process_object_request(p.msg, p.parked_at);
      } else if (p.msg.type == MsgType::kShardRegister) {
        process_register(p.msg, p.parked_at);
      }
    }
  }
  std::vector<GlobalAddress> local;
  for (const auto& [addr, t] : parked_local_) {
    if (shard_of(addr) == s) local.push_back(addr);
  }
  for (GlobalAddress a : local) {
    const Nanos t0 = parked_local_[a];
    parked_local_.erase(a);
    if (fetching_.contains(a)) begin_fetch(a);
    // If begin_fetch re-parked, keep the original TTL clock.
    if (auto it = parked_local_.find(a); it != parked_local_.end()) {
      it->second = t0;
    }
  }
}

void AttractionMemory::purge_parked() {
  const Nanos ttl = 4 * site_.config().failure_timeout;
  const Nanos now = site_.clock().now();
  for (std::uint32_t s = 0; s < kNumShards; ++s) {
    auto& q = parked_remote_[s];
    for (const ParkedShardMsg& p : q) {
      if (now - p.parked_at <= ttl) continue;
      if (p.msg.type == MsgType::kObjectRequest) {
        SdMessage miss;
        miss.src_mgr = miss.dst_mgr = ManagerId::kAttractionMemory;
        miss.type = MsgType::kObjectMiss;
        (void)site_.messages().respond(p.msg, std::move(miss));
      }
    }
    std::erase_if(q, [&](const ParkedShardMsg& p) {
      return now - p.parked_at > ttl;
    });
  }
  std::vector<GlobalAddress> expired;
  for (const auto& [addr, t] : parked_local_) {
    if (now - t > ttl) expired.push_back(addr);
  }
  for (GlobalAddress a : expired) {
    parked_local_.erase(a);
    fetch_retries_.erase(a);
    auto node = fetching_.extract(a);
    if (!node.empty()) {
      node.mapped()->signal(
          Status::error(ErrorCode::kNotFound, "no such object"));
    }
  }
}

void AttractionMemory::process_object_request(const SdMessage& msg,
                                              Nanos parked_at) {
  ShardRoutedRequest req;
  try {
    ByteReader r(msg.payload);
    auto parsed = ShardRoutedRequest::deserialize(r);
    if (!parsed.is_ok()) return;
    req = parsed.value();
  } catch (const DecodeError&) {
    return;
  }
  ++directory_lookups;
  const std::uint32_t s = req.shard;
  if (shard_of(req.addr) != s) {
    // Malformed route header: never guess, answer miss.
    SdMessage miss;
    miss.src_mgr = miss.dst_mgr = ManagerId::kAttractionMemory;
    miss.type = MsgType::kObjectMiss;
    (void)site_.messages().respond(msg, std::move(miss));
    return;
  }
  max_epoch_seen_[s] = std::max(max_epoch_seen_[s], req.epoch);
  if (!shard_authoritative(s)) {
    const SiteId route = route_of(s);
    if (route == site_.id()) {
      // Authority is in flight to us (handoff/rebuild): park under TTL.
      park_remote(msg, s, parked_at);
      return;
    }
    reject_stale(msg, s);
    return;
  }
  if (req.epoch > leases_[s].epoch) {
    // The requester has proof of a newer lease naming us: adopt the epoch
    // (it refers to our own holding) rather than bouncing it back.
    leases_[s].epoch = req.epoch;
  }
  auto dit = directory_.find(req.addr);
  if (dit == directory_.end()) {
    // Registration may still be in flight (alloc races the first fetch):
    // park; the TTL purge answers miss if it never lands.
    park_remote(msg, s, parked_at);
    return;
  }
  Waiter w;
  w.requester = msg.src;
  w.reply_seq = msg.seq;
  dit->second.waiters.push_back(std::move(w));
  grant_next(req.addr);
}

void AttractionMemory::process_register(const SdMessage& msg,
                                        Nanos parked_at) {
  ShardRegister reg;
  try {
    ByteReader r(msg.payload);
    auto parsed = ShardRegister::deserialize(r);
    if (!parsed.is_ok()) return;
    reg = parsed.value();
  } catch (const DecodeError&) {
    return;
  }
  const std::uint32_t s = shard_of(reg.addr);
  if (!shard_authoritative(s)) {
    const SiteId route = route_of(s);
    if (route == site_.id() || route == kInvalidSite) {
      park_remote(msg, s, parked_at);
    } else if (msg.hops < 8) {
      // Mis-routed registration: forward toward the holder, hop-capped.
      ++stale_epoch_rejects;
      send_register(reg.addr, reg.program, reg.owner, route,
                    static_cast<std::uint8_t>(msg.hops + 1));
    }
    return;
  }
  auto& entry = directory_[reg.addr];
  if (entry.owner == kInvalidSite) {
    entry.owner = reg.owner;
    entry.program = reg.program;
  } else if (reg.owner == msg.src && entry.owner != reg.owner) {
    // The sender physically holds the object (it re-took custody after a
    // handoff raced a recall): possession beats a stale entry.
    entry.owner = reg.owner;
    entry.program = reg.program;
  }
  drain_parked(s);
  grant_next(reg.addr);
}

}  // namespace sdvm
