#include "runtime/checkpoint_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <set>

#include "common/log.hpp"

namespace sdvm {

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

std::uint32_t crc32(std::span<const std::byte> data) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::byte b : data) {
    c = table[(c ^ static_cast<std::uint8_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// MemStateStore
// ---------------------------------------------------------------------------

Status MemStateStore::put(const std::string& name,
                          std::span<const std::byte> data) {
  std::lock_guard lk(mu_);
  files_[name].assign(data.begin(), data.end());
  return Status::ok();
}

Result<std::vector<std::byte>> MemStateStore::get(const std::string& name) {
  std::lock_guard lk(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::error(ErrorCode::kNotFound, "no state file '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> MemStateStore::list() {
  std::lock_guard lk(mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, bytes] : files_) names.push_back(name);
  return names;
}

void MemStateStore::remove(const std::string& name) {
  std::lock_guard lk(mu_);
  files_.erase(name);
}

// ---------------------------------------------------------------------------
// DirStateStore
// ---------------------------------------------------------------------------

DirStateStore::DirStateStore(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
  if (ec) {
    SDVM_ERROR("state-store") << "cannot create " << root_ << ": "
                              << ec.message();
  }
}

Status DirStateStore::put(const std::string& name,
                          std::span<const std::byte> data) {
  std::string tmp = root_ + "/" + name + ".tmp";
  std::string final_path = root_ + "/" + name;
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::error(ErrorCode::kInternal, "open " + tmp + " failed");
  }
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::error(ErrorCode::kInternal, "write " + tmp + " failed");
    }
    off += static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must never become visible while the
  // data is still only in the page cache.
  (void)::fsync(fd);
  ::close(fd);
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::error(ErrorCode::kInternal,
                         "rename to " + final_path + " failed");
  }
  return Status::ok();
}

Result<std::vector<std::byte>> DirStateStore::get(const std::string& name) {
  std::string path = root_ + "/" + name;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::error(ErrorCode::kNotFound, "no state file '" + name + "'");
  }
  std::vector<std::byte> out;
  std::array<std::byte, 65536> buf;
  for (;;) {
    ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      ::close(fd);
      return Status::error(ErrorCode::kInternal, "read " + path + " failed");
    }
    if (n == 0) break;
    out.insert(out.end(), buf.begin(), buf.begin() + n);
  }
  ::close(fd);
  return out;
}

std::vector<std::string> DirStateStore::list() {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(root_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.ends_with(".tmp")) continue;  // torn write
    names.push_back(std::move(name));
  }
  return names;
}

void DirStateStore::remove(const std::string& name) {
  ::unlink((root_ + "/" + name).c_str());
}

// ---------------------------------------------------------------------------
// FaultyStateStore
// ---------------------------------------------------------------------------

Status FaultyStateStore::put(const std::string& name,
                             std::span<const std::byte> data) {
  double roll = rng_.uniform();
  if (roll < opts_.drop_write) {
    ++faults_injected_;
    return Status::ok();  // write silently lost — like a crash before fsync
  }
  roll -= opts_.drop_write;
  if (roll < opts_.torn_write && !data.empty()) {
    ++faults_injected_;
    std::size_t keep = rng_.below(data.size());
    return inner_->put(name, data.subspan(0, keep));
  }
  roll -= opts_.torn_write;
  if (roll < opts_.bit_flip && !data.empty()) {
    ++faults_injected_;
    std::vector<std::byte> mangled(data.begin(), data.end());
    std::size_t at = rng_.below(mangled.size());
    mangled[at] ^= std::byte{static_cast<std::uint8_t>(1u << rng_.below(8))};
    return inner_->put(name, mangled);
  }
  return inner_->put(name, data);
}

// ---------------------------------------------------------------------------
// DurableEpoch
// ---------------------------------------------------------------------------

void DurableEpoch::serialize(ByteWriter& w) const {
  w.program(pid);
  w.u64(epoch);
  info.serialize(w);
  w.u32(static_cast<std::uint32_t>(shards.size()));
  for (const auto& [sid, blob] : shards) {
    w.site(sid);
    w.blob(blob);
  }
  w.u32(static_cast<std::uint32_t>(sources.size()));
  for (const auto& [tid, src] : sources) {
    w.u32(tid);
    w.str(src);
  }
  w.u32(static_cast<std::uint32_t>(io_log.size()));
  for (const auto& rec : io_log) {
    w.u64(rec.epoch);
    w.u64(rec.seq);
    w.str(rec.text);
  }
  w.u32(static_cast<std::uint32_t>(shard_epochs.size()));
  for (const auto& [shard, epoch] : shard_epochs) {
    w.u32(shard);
    w.u64(epoch);
  }
}

Result<DurableEpoch> DurableEpoch::deserialize(ByteReader& r) {
  try {
    DurableEpoch d;
    d.pid = r.program();
    d.epoch = r.u64();
    auto info = ProgramInfo::deserialize(r);
    if (!info.is_ok()) return info.status();
    d.info = std::move(info).value();
    std::uint32_t nshards = r.count(/*min_bytes_each=*/8);
    for (std::uint32_t i = 0; i < nshards; ++i) {
      SiteId sid = r.site();
      d.shards[sid] = r.blob();
    }
    std::uint32_t nsrc = r.count(/*min_bytes_each=*/8);
    for (std::uint32_t i = 0; i < nsrc; ++i) {
      MicrothreadId tid = r.u32();
      d.sources.emplace_back(tid, r.str());
    }
    std::uint32_t nlog = r.count(/*min_bytes_each=*/20);
    for (std::uint32_t i = 0; i < nlog; ++i) {
      IoRecord rec;
      rec.epoch = r.u64();
      rec.seq = r.u64();
      rec.text = r.str();
      d.io_log.push_back(std::move(rec));
    }
    // Trailing section, absent in pre-shard-lease checkpoint files.
    if (r.remaining() > 0) {
      std::uint32_t nse = r.count(/*min_bytes_each=*/12);
      for (std::uint32_t i = 0; i < nse; ++i) {
        std::uint32_t shard = r.u32();
        d.shard_epochs[shard] = r.u64();
      }
    }
    return d;
  } catch (const DecodeError& e) {
    return Status::error(ErrorCode::kCorrupt,
                         std::string("bad DurableEpoch: ") + e.what());
  }
}

// ---------------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------------

namespace {
constexpr std::uint32_t kFrameMagic = 0x4B434453u;  // "SDCK"
constexpr std::uint32_t kFrameVersion = 1;
constexpr std::uint64_t kManifestEpoch = ~std::uint64_t{0};
}  // namespace

std::vector<std::byte> CheckpointStore::frame(
    ProgramId pid, std::uint64_t epoch, std::span<const std::byte> payload) {
  ByteWriter w;
  w.u32(kFrameMagic);
  w.u32(kFrameVersion);
  w.u64(pid.value);
  w.u64(epoch);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload));
  w.raw(payload.data(), payload.size());
  return w.take();
}

Result<std::vector<std::byte>> CheckpointStore::unframe(
    std::span<const std::byte> file, ProgramId expected_pid) {
  try {
    ByteReader r(file);
    if (r.u32() != kFrameMagic) {
      return Status::error(ErrorCode::kCorrupt, "bad checkpoint magic");
    }
    if (r.u32() != kFrameVersion) {
      return Status::error(ErrorCode::kCorrupt, "bad checkpoint version");
    }
    std::uint64_t pid = r.u64();
    if (expected_pid.value != 0 && pid != expected_pid.value) {
      return Status::error(ErrorCode::kCorrupt, "checkpoint pid mismatch");
    }
    (void)r.u64();  // epoch: informational in the frame, name is canonical
    std::uint32_t len = r.u32();
    std::uint32_t want_crc = r.u32();
    if (r.remaining() != len) {
      return Status::error(ErrorCode::kCorrupt,
                           "checkpoint length mismatch (torn write?)");
    }
    std::vector<std::byte> payload(file.end() - static_cast<std::ptrdiff_t>(len),
                                   file.end());
    if (crc32(payload) != want_crc) {
      return Status::error(ErrorCode::kCorrupt, "checkpoint CRC mismatch");
    }
    return payload;
  } catch (const DecodeError& e) {
    return Status::error(ErrorCode::kCorrupt,
                         std::string("truncated checkpoint: ") + e.what());
  }
}

std::string CheckpointStore::epoch_file_name(ProgramId pid,
                                             std::uint64_t epoch) {
  return "p" + std::to_string(pid.value) + "-e" + std::to_string(epoch) +
         ".ckpt";
}

std::string CheckpointStore::manifest_name(ProgramId pid) {
  return "p" + std::to_string(pid.value) + ".manifest";
}

bool CheckpointStore::parse_name(const std::string& name, ProgramId* pid,
                                 std::uint64_t* epoch) {
  if (name.empty() || name[0] != 'p') return false;
  std::size_t i = 1;
  std::uint64_t pv = 0;
  bool any = false;
  while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
    pv = pv * 10 + static_cast<std::uint64_t>(name[i] - '0');
    ++i;
    any = true;
  }
  if (!any) return false;
  if (name.compare(i, std::string::npos, ".manifest") == 0) {
    *pid = ProgramId{pv};
    *epoch = kManifestEpoch;
    return true;
  }
  if (i >= name.size() || name.compare(i, 2, "-e") != 0) return false;
  i += 2;
  std::uint64_t ev = 0;
  any = false;
  while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
    ev = ev * 10 + static_cast<std::uint64_t>(name[i] - '0');
    ++i;
    any = true;
  }
  if (!any || name.compare(i, std::string::npos, ".ckpt") != 0) return false;
  *pid = ProgramId{pv};
  *epoch = ev;
  return true;
}

Status CheckpointStore::persist(const DurableEpoch& snap) {
  // Never overwrite an epoch file that already validates: re-replication
  // after a home takeover resends epochs we may already hold, and an
  // in-place rewrite torn by a faulty medium would destroy the one valid
  // copy it was meant to refresh. Any valid consistent cut at this epoch
  // serves recovery equally well.
  if (auto existing = backend_->get(epoch_file_name(snap.pid, snap.epoch));
      existing.is_ok() && unframe(existing.value(), snap.pid).is_ok()) {
    return Status::ok();
  }

  ByteWriter payload;
  snap.serialize(payload);
  auto file = frame(snap.pid, snap.epoch, payload.bytes());
  Status st = backend_->put(epoch_file_name(snap.pid, snap.epoch), file);
  if (!st.is_ok()) return st;

  // Read-back verification: a faulty medium can tear or flip the write we
  // just made while reporting success. Only a frame that validates counts
  // as persisted (quorum members must hold real replicas), points the
  // manifest at itself, or licenses garbage collection — otherwise GC
  // could delete the last *valid* generation behind a corrupt newest one.
  auto written = backend_->get(epoch_file_name(snap.pid, snap.epoch));
  if (!written.is_ok() || !unframe(written.value(), snap.pid).is_ok()) {
    ++corrupt_skipped_;
    return Status::error(ErrorCode::kCorrupt,
                         "checkpoint write failed verification (epoch " +
                             std::to_string(snap.epoch) + ")");
  }

  // An older epoch can arrive after a newer one (a freshly adopting
  // coordinator re-replicating its bootstrap snapshot, or a stale
  // retransmit). The manifest must keep naming the newest *valid*
  // generation, so only move it forward.
  std::uint64_t newest = snap.epoch;
  if (auto mf = backend_->get(manifest_name(snap.pid)); mf.is_ok()) {
    if (auto payload = unframe(mf.value(), snap.pid); payload.is_ok()) {
      try {
        ByteReader r(payload.value());
        std::uint64_t cur = r.u64();
        if (cur > newest && load_epoch_file(snap.pid, cur).is_ok()) {
          newest = cur;
        }
      } catch (const DecodeError&) {
      }
    }
  }
  if (newest == snap.epoch) {
    ByteWriter m;
    m.u64(snap.epoch);
    st = backend_->put(manifest_name(snap.pid),
                       frame(snap.pid, snap.epoch, m.bytes()));
    if (!st.is_ok()) return st;
  }
  ++persisted_;

  // GC: keep the newest two generations so the previous epoch survives a
  // torn write of the current one. Safe because the newest generation was
  // verified (above for a fresh write, via load_epoch_file when an older
  // manifest won).
  for (const std::string& name : backend_->list()) {
    ProgramId pid{0};
    std::uint64_t epoch = 0;
    if (!parse_name(name, &pid, &epoch)) continue;
    if (pid != snap.pid || epoch == kManifestEpoch) continue;
    if (epoch + 1 < newest) backend_->remove(name);
  }
  return Status::ok();
}

Result<DurableEpoch> CheckpointStore::load_epoch_file(ProgramId pid,
                                                      std::uint64_t epoch) {
  auto file = backend_->get(epoch_file_name(pid, epoch));
  if (!file.is_ok()) return file.status();
  auto payload = unframe(file.value(), pid);
  if (!payload.is_ok()) return payload.status();
  ByteReader r(payload.value());
  auto snap = DurableEpoch::deserialize(r);
  if (!snap.is_ok()) return snap.status();
  if (snap.value().pid != pid || snap.value().epoch != epoch) {
    return Status::error(ErrorCode::kCorrupt, "checkpoint identity mismatch");
  }
  return snap;
}

Result<DurableEpoch> CheckpointStore::load_latest(ProgramId pid) {
  // Fast path: the manifest names the newest epoch.
  std::uint64_t manifest_epoch = kManifestEpoch;
  if (auto mf = backend_->get(manifest_name(pid)); mf.is_ok()) {
    auto payload = unframe(mf.value(), pid);
    if (payload.is_ok()) {
      try {
        ByteReader r(payload.value());
        manifest_epoch = r.u64();
      } catch (const DecodeError&) {
        ++corrupt_skipped_;
      }
    } else {
      ++corrupt_skipped_;
    }
  }
  if (manifest_epoch != kManifestEpoch) {
    auto snap = load_epoch_file(pid, manifest_epoch);
    if (snap.is_ok()) return snap;
    ++corrupt_skipped_;
  }

  // Fallback: scan epoch files newest-first and take the first that
  // validates (missing manifest, torn manifest, or torn newest epoch).
  std::vector<std::uint64_t> epochs;
  for (const std::string& name : backend_->list()) {
    ProgramId p{0};
    std::uint64_t e = 0;
    if (parse_name(name, &p, &e) && p == pid && e != kManifestEpoch &&
        e != manifest_epoch) {
      epochs.push_back(e);
    }
  }
  std::sort(epochs.rbegin(), epochs.rend());
  for (std::uint64_t e : epochs) {
    auto snap = load_epoch_file(pid, e);
    if (snap.is_ok()) return snap;
    ++corrupt_skipped_;
  }
  return Status::error(ErrorCode::kNotFound,
                       "no valid checkpoint for program " +
                           std::to_string(pid.value));
}

std::vector<std::pair<ProgramId, std::uint64_t>>
CheckpointStore::recoverable() {
  std::set<ProgramId> pids;
  for (const std::string& name : backend_->list()) {
    ProgramId pid{0};
    std::uint64_t epoch = 0;
    if (parse_name(name, &pid, &epoch)) pids.insert(pid);
  }
  std::vector<std::pair<ProgramId, std::uint64_t>> out;
  for (ProgramId pid : pids) {
    auto snap = load_latest(pid);
    if (snap.is_ok()) out.emplace_back(pid, snap.value().epoch);
  }
  return out;
}

void CheckpointStore::drop(ProgramId pid) {
  for (const std::string& name : backend_->list()) {
    ProgramId p{0};
    std::uint64_t e = 0;
    if (parse_name(name, &p, &e) && p == pid) backend_->remove(name);
  }
}

}  // namespace sdvm
