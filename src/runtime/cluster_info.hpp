// Cluster list entries: what every site knows about every other site.
// "This list includes the site's logical and physical addresses and
// information about the site's hardware like its platform id and
// performance characteristics" (paper §4, cluster manager), extended by
// "statistical data about e.g. the other sites' load" for help-target
// selection.
#pragma once

#include <cstdint>
#include <string>

#include "common/serialize.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace sdvm {

struct LoadStats {
  std::uint32_t queued_frames = 0;  // executable + ready
  std::uint32_t running = 0;        // microthreads in flight
  std::uint32_t programs = 0;
  std::uint64_t executed_total = 0;

  void serialize(ByteWriter& w) const {
    w.u32(queued_frames);
    w.u32(running);
    w.u32(programs);
    w.u64(executed_total);
  }
  static LoadStats deserialize(ByteReader& r) {
    LoadStats s;
    s.queued_frames = r.u32();
    s.running = r.u32();
    s.programs = r.u32();
    s.executed_total = r.u64();
    return s;
  }
};

struct SiteInfo {
  SiteId id = kInvalidSite;
  std::string address;     // physical (transport) address
  std::string name;
  PlatformId platform;
  double speed = 1.0;
  LoadStats load;
  /// Monotone version for gossip merging: higher wins.
  std::uint64_t version = 0;
  bool alive = true;
  /// After a graceful sign-off: who absorbed this site's memory directory.
  SiteId successor = kInvalidSite;
  /// "Several sites act as code distribution sites. These sites are bound
  /// to store every microthread" (§4) — advertised so requesters find them.
  bool code_site = false;

  void serialize(ByteWriter& w) const {
    w.site(id);
    w.str(address);
    w.str(name);
    w.str(platform);
    w.f64(speed);
    load.serialize(w);
    w.u64(version);
    w.boolean(alive);
    w.site(successor);
    w.boolean(code_site);
  }
  static Result<SiteInfo> deserialize(ByteReader& r) {
    try {
      SiteInfo s;
      s.id = r.site();
      s.address = r.str();
      s.name = r.str();
      s.platform = r.str();
      s.speed = r.f64();
      s.load = LoadStats::deserialize(r);
      s.version = r.u64();
      s.alive = r.boolean();
      s.successor = r.site();
      s.code_site = r.boolean();
      return s;
    } catch (const DecodeError& e) {
      return Status::error(ErrorCode::kCorrupt,
                           std::string("bad SiteInfo: ") + e.what());
    }
  }
};

}  // namespace sdvm
