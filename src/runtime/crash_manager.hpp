// Crash management (paper §2.2/§6, and Haase/Eschmann GI 2004 [4]):
// "automatic backup and recovery mechanism (which uses checkpointing)".
//
// Implementation: bounded-drain coordinated checkpointing with durable,
// k-replicated epochs. The program's home site coordinates rounds:
//   freeze → (sites quiesce execution, in-flight messages drain) →
//   snapshot (frames + memory + queues per site) → replicate the epoch to
//   k-1 deterministically chosen holders → commit once a quorum of the k
//   copies has persisted (resume).
// Every holder with a state store also persists the epoch to disk as a
// CRC-framed, atomically renamed file (checkpoint_store.hpp), so epochs
// survive process death, not just site death.
//
// Failure detection comes from the cluster manager's heartbeat timeouts.
// On a site death the coordinator restores the last committed epoch: every
// site clears the program and reinstalls its shard; orphaned shards are
// adopted by the coordinator, which also becomes the dead sites' routing
// successor. If the *home* site dies, a surviving replica holder takes
// over as coordinator and new home (re-homing), importing the replicated
// sources and output log. Dead holders are replaced (re-replication).
//
// Cold restart: a daemon that comes back (or a freshly formed cluster)
// scans its state dir, advertises recoverable (program, epoch) pairs
// after sign-on (kRecoveryOffer), and the holders elect the highest
// persisted epoch — ties go to the lowest site id — whose owner resumes
// the program. A live home answers offers with kRecoveryActive so stale
// holders stand down.
//
// Guarantees: execution state is never lost while at least one persisted
// replica of a committed epoch exists; console output is delivered
// exactly once (the frontend's log is epoch-tagged and truncated on
// rollback, see io_manager.hpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "runtime/checkpoint_store.hpp"
#include "runtime/message.hpp"
#include "runtime/metrics.hpp"

namespace sdvm {

class Site;

class CrashManager {
 public:
  explicit CrashManager(Site& site) : site_(site) {}

  /// Periodic driver: starts checkpoint rounds for programs homed here.
  void on_tick();

  /// Cluster manager verdict: `dead` stopped heartbeating.
  void on_site_dead(SiteId dead);

  /// Sign-on/bootstrap completed: scan the state store and, if it holds
  /// recoverable programs, start the recovery-offer election.
  void on_cluster_entered();

  /// Home-site hook, after the entry frame fired: persists + replicates an
  /// "epoch 0" record (info + sources, no shards) so even a home death
  /// before the first checkpoint is survivable.
  void on_program_started(ProgramId pid);

  void handle(const SdMessage& msg);
  void drop_program(ProgramId pid);

  [[nodiscard]] bool frozen() const { return freeze_depth_ > 0; }

  // --- introspection (chaos invariant checkers) -------------------------
  /// Latest committed checkpoint epoch for `pid` on this site (0 = none).
  [[nodiscard]] std::uint64_t committed_epoch(ProgramId pid) const {
    auto it = committed_.find(pid);
    return it == committed_.end() ? 0 : it->second.epoch;
  }
  /// Max committed epoch across all programs this site coordinates.
  [[nodiscard]] std::uint64_t max_committed_epoch() const {
    std::uint64_t m = 0;
    for (const auto& [pid, snap] : committed_) m = std::max(m, snap.epoch);
    return m;
  }
  /// Current replica holders (excluding the home) for a program we
  /// coordinate — tests assert placement and re-replication.
  [[nodiscard]] std::vector<SiteId> replica_holders(ProgramId pid) const {
    auto it = holders_.find(pid);
    return it == holders_.end() ? std::vector<SiteId>{} : it->second;
  }
  /// The durable store (null when neither --state-dir nor an attached
  /// store is present).
  [[nodiscard]] CheckpointStore* checkpoint_store();

  /// Registers this manager's instruments ("crash." prefix).
  void register_metrics(metrics::MetricsRegistry& registry) {
    registry.register_counter("crash.checkpoints_committed",
                              &checkpoints_committed);
    registry.register_counter("crash.recoveries", &recoveries);
    registry.register_counter("crash.replicas_persisted",
                              &replicas_persisted);
    registry.register_gauge("crash.committed_epoch", [this] {
      return static_cast<std::int64_t>(max_committed_epoch());
    });
    registry.register_gauge("crash.recovery_ms",
                            [this] { return last_recovery_ms_; });
    registry.register_gauge("crash.disk_corrupt_skipped", [this] {
      return static_cast<std::int64_t>(
          ckpt_ ? ckpt_->corrupt_skipped() : 0);
    });
  }

  // Deprecated shims: read "crash.*" via Site::introspect() instead.
  metrics::Counter checkpoints_committed;
  metrics::Counter recoveries;
  metrics::Counter replicas_persisted;

 private:
  // -- coordinator side --
  void begin_checkpoint(ProgramId pid);
  void maybe_commit(ProgramId pid);
  void maybe_finish_commit(ProgramId pid);
  void begin_recovery(ProgramId pid, SiteId dead);
  /// Takes over as home from a replica (in-memory or loaded from disk).
  void take_over(ProgramId pid, DurableEpoch snap);

  /// Deterministic replica placement: the k-1 live sites after
  /// `pid % n` on the sorted ring, excluding us.
  [[nodiscard]] std::vector<SiteId> pick_holders(ProgramId pid) const;
  /// Bundles everything a holder needs (info, shards, sources, io log).
  [[nodiscard]] DurableEpoch build_durable(
      ProgramId pid, std::uint64_t epoch,
      std::map<SiteId, std::vector<std::byte>> shards);
  /// Persists to the local store if one is attached; counts successes.
  void persist_local(const DurableEpoch& snap);
  /// Sends kCheckpointReplica with `snap` to every current holder.
  void replicate(ProgramId pid, const DurableEpoch& snap);

  // -- cold-restart election --
  void announce_offers();
  void close_election(ProgramId pid);
  void handle_offer(const SdMessage& msg);
  void handle_offer_answer(const SdMessage& msg);

  // -- participant side --
  void handle_freeze(const SdMessage& msg);
  /// Polls quiescence; once reached, acks the freeze (kCheckpointFrozen).
  void try_ack_frozen();
  void handle_take_shard(const SdMessage& msg);
  void handle_commit(const SdMessage& msg);
  void handle_replica(const SdMessage& msg);
  void handle_restore(const SdMessage& msg);

  /// Serializes this site's full state for `pid`: scheduler queues +
  /// attraction memory (frames, objects, directory).
  [[nodiscard]] std::vector<std::byte> make_shard(ProgramId pid) const;
  void install_shard(ProgramId pid, std::span<const std::byte> shard);
  void clear_program_state(ProgramId pid);

  Site& site_;

  // Coordinator state. Three phases: collect frozen-acks from every site,
  // wait out the drain and collect shards, then wait for a persist quorum.
  struct Round {
    std::uint64_t epoch;
    std::vector<SiteId> expected;
    std::set<SiteId> frozen;
    bool collecting = false;
    std::map<SiteId, std::vector<std::byte>> received;
    Nanos started;
    // Quorum phase: the assembled snapshot and who persisted it so far.
    bool awaiting_quorum = false;
    DurableEpoch snap;
    std::set<SiteId> persist_acks;
  };
  std::map<ProgramId, Round> active_rounds_;
  std::map<ProgramId, DurableEpoch> committed_;  // latest committed epoch
  std::map<ProgramId, Nanos> last_checkpoint_;
  std::map<ProgramId, std::uint64_t> next_epoch_;
  std::map<ProgramId, std::vector<SiteId>> holders_;

  // Recovery-fanout timing (crash.recovery_ms).
  std::map<ProgramId, Nanos> recovery_started_;
  std::map<ProgramId, std::set<SiteId>> recovery_waiting_;
  std::int64_t last_recovery_ms_ = 0;

  // Cold-restart election state, per recoverable program.
  struct RecoveryElection {
    std::uint64_t my_epoch = 0;
    bool announced = false;
    std::map<SiteId, std::uint64_t> offers;  // competing holders
  };
  std::map<ProgramId, RecoveryElection> elections_;
  bool announce_scheduled_ = false;

  // Participant state.
  int freeze_depth_ = 0;
  struct PendingShard {
    ProgramId pid;
    std::uint64_t epoch;
    SiteId coordinator;
    bool acked = false;  // quiescence reported
    Nanos frozen_at = 0;  // for expiry when the coordinator dies mid-round
  };
  std::vector<PendingShard> pending_shards_;
  /// Drops pending shards matching `pred`; unfreezes when none remain.
  template <typename Pred>
  void expire_pending_shards(Pred pred);

  // Replicas we hold for programs homed elsewhere. `replica_peers_` is the
  // full holder set (home included) that rode along with the replica: on a
  // home death, the lowest live site in that set takes over — every holder
  // evaluates the same rule, so exactly one does.
  std::map<ProgramId, DurableEpoch> replicas_;
  std::map<ProgramId, SiteId> replica_home_;
  std::map<ProgramId, std::vector<SiteId>> replica_peers_;

  std::unique_ptr<CheckpointStore> ckpt_;
  bool ckpt_checked_ = false;
};

}  // namespace sdvm
