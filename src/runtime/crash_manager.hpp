// Crash management (paper §2.2/§6, and Haase/Eschmann GI 2004 [4]):
// "automatic backup and recovery mechanism (which uses checkpointing)".
//
// Implementation: bounded-drain coordinated checkpointing. The program's
// home site coordinates rounds:
//   freeze → (sites quiesce execution, in-flight messages drain) →
//   snapshot (frames + memory + queues per site) → replica to a backup
//   site → commit (resume).
// Failure detection comes from the cluster manager's heartbeat timeouts.
// On a site death the coordinator restores the last committed epoch: every
// site clears the program and reinstalls its shard; the dead site's shard
// is adopted by the coordinator, which also becomes the dead site's
// routing successor. If the *home* site dies, the backup replica holder
// takes over as coordinator and new home.
//
// Guarantees: execution state is never lost once an epoch commits; output
// side effects after the last commit may repeat (at-least-once I/O).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "runtime/message.hpp"
#include "runtime/metrics.hpp"

namespace sdvm {

class Site;

class CrashManager {
 public:
  explicit CrashManager(Site& site) : site_(site) {}

  /// Periodic driver: starts checkpoint rounds for programs homed here.
  void on_tick();

  /// Cluster manager verdict: `dead` stopped heartbeating.
  void on_site_dead(SiteId dead);

  void handle(const SdMessage& msg);
  void drop_program(ProgramId pid);

  [[nodiscard]] bool frozen() const { return freeze_depth_ > 0; }

  // --- introspection (chaos invariant checkers) -------------------------
  /// Latest committed checkpoint epoch for `pid` on this site (0 = none).
  [[nodiscard]] std::uint64_t committed_epoch(ProgramId pid) const {
    auto it = committed_.find(pid);
    return it == committed_.end() ? 0 : it->second.epoch;
  }
  /// Max committed epoch across all programs this site coordinates.
  [[nodiscard]] std::uint64_t max_committed_epoch() const {
    std::uint64_t m = 0;
    for (const auto& [pid, snap] : committed_) m = std::max(m, snap.epoch);
    return m;
  }

  /// Registers this manager's instruments ("crash." prefix).
  void register_metrics(metrics::MetricsRegistry& registry) {
    registry.register_counter("crash.checkpoints_committed",
                              &checkpoints_committed);
    registry.register_counter("crash.recoveries", &recoveries);
    registry.register_gauge("crash.committed_epoch", [this] {
      return static_cast<std::int64_t>(max_committed_epoch());
    });
  }

  // Deprecated shims: read "crash.*" via Site::introspect() instead.
  metrics::Counter checkpoints_committed;
  metrics::Counter recoveries;

 private:
  struct Snapshot {
    std::uint64_t epoch = 0;
    // Per contributing site: serialized state shard.
    std::map<SiteId, std::vector<std::byte>> shards;
  };

  // -- coordinator side --
  void begin_checkpoint(ProgramId pid);
  void maybe_commit(ProgramId pid);
  void begin_recovery(ProgramId pid, SiteId dead);

  // -- participant side --
  void handle_freeze(const SdMessage& msg);
  /// Polls quiescence; once reached, acks the freeze (kCheckpointFrozen).
  void try_ack_frozen();
  void handle_take_shard(const SdMessage& msg);
  void handle_commit(const SdMessage& msg);
  void handle_restore(const SdMessage& msg);

  /// Serializes this site's full state for `pid`: scheduler queues +
  /// attraction memory (frames, objects, directory).
  [[nodiscard]] std::vector<std::byte> make_shard(ProgramId pid) const;
  void install_shard(ProgramId pid, std::span<const std::byte> shard);
  void clear_program_state(ProgramId pid);

  Site& site_;

  // Coordinator state. Two phases: collect frozen-acks from every site,
  // wait out the drain, then collect shards.
  struct Round {
    std::uint64_t epoch;
    std::vector<SiteId> expected;
    std::set<SiteId> frozen;
    bool collecting = false;
    std::map<SiteId, std::vector<std::byte>> received;
    Nanos started;
  };
  std::map<ProgramId, Round> active_rounds_;
  std::map<ProgramId, Snapshot> committed_;   // latest committed snapshot
  std::map<ProgramId, Nanos> last_checkpoint_;
  std::map<ProgramId, std::uint64_t> next_epoch_;
  std::map<ProgramId, SiteId> backup_site_;

  // Participant state.
  int freeze_depth_ = 0;
  struct PendingShard {
    ProgramId pid;
    std::uint64_t epoch;
    SiteId coordinator;
    bool acked = false;  // quiescence reported
  };
  std::vector<PendingShard> pending_shards_;

  // Backup replicas we hold for programs homed elsewhere.
  std::map<ProgramId, Snapshot> replicas_;
  std::map<ProgramId, SiteId> replica_home_;
};

}  // namespace sdvm
