#include "runtime/code_manager.hpp"

#include <chrono>

#include "microc/compiler.hpp"
#include "runtime/site.hpp"

namespace sdvm {

namespace {

Nanos wall_nanos_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Result<Executable> make_bytecode_executable(
    std::shared_ptr<const microc::Program> prog) {
  auto decoded = microc::decode(*prog);
  if (!decoded.is_ok()) return decoded.status();
  Executable exec;
  exec.bytecode = std::move(prog);
  exec.decoded = std::make_shared<const microc::DecodedProgram>(
      std::move(decoded).value());
  return exec;
}

void CodeManager::register_metrics(metrics::MetricsRegistry& registry) {
  registry.register_counter("code.compiles", &compiles);
  registry.register_counter("code.binary_fetches", &binary_fetches);
  registry.register_counter("code.source_fetches", &source_fetches);
  registry.register_counter("code.uploads_received", &uploads_received);
  registry.register_counter("code.cache_hits", &cache_hits);
  registry.register_histogram("code.compile_ns", &compile_ns);
  registry.register_gauge("code.cached_executables", [this] {
    return static_cast<std::int64_t>(cache_.size());
  });
}

void CodeManager::store_sources(const ProgramInfo& info,
                                const ProgramSpec& spec) {
  for (std::size_t i = 0; i < spec.threads.size(); ++i) {
    const auto& t = spec.threads[i];
    if (!t.source.empty()) {
      sources_[Key{info.id, static_cast<MicrothreadId>(i)}] = t.source;
    }
  }
}

std::optional<Executable> CodeManager::resolve_local(ProgramId pid,
                                                     MicrothreadId tid) {
  Key key{pid, tid};
  if (auto it = cache_.find(key); it != cache_.end()) {
    ++cache_hits;
    return it->second;
  }

  const ProgramInfo* info = site_.programs().find(pid);
  if (info == nullptr || tid >= info->thread_names.size()) return std::nullopt;

  // 1. Native binary for this process (the platform-specific fast path).
  if (NativeFn fn = NativeRegistry::instance().find(
          info->name, info->thread_names[tid]);
      fn != nullptr) {
    Executable exec;
    exec.native = std::move(fn);
    cache_[key] = exec;
    return exec;
  }

  // 2. Local binary artifact compiled for our platform.
  if (auto it = binaries_.find({key, site_.config().platform});
      it != binaries_.end()) {
    auto exec = make_bytecode_executable(it->second);
    if (!exec.is_ok()) {
      SDVM_ERROR(site_.tag())
          << "cached binary for '" << info->thread_names[tid]
          << "' failed verification: " << exec.status().to_string();
      binaries_.erase(it);  // poisoned artifact; fall through to source
    } else {
      cache_[key] = exec.value();
      return exec.value();
    }
  }

  // 3. Local source (we are a code home): compile on the fly.
  if (auto it = sources_.find(key); it != sources_.end()) {
    auto started = std::chrono::steady_clock::now();
    auto compiled =
        microc::compile(it->second, info->thread_names[tid]);
    compile_ns.record(wall_nanos_since(started));
    if (!compiled.is_ok()) {
      SDVM_ERROR(site_.tag())
          << "compile of '" << info->thread_names[tid]
          << "' failed: " << compiled.status().to_string();
      return std::nullopt;
    }
    ++compiles;
    site_.sim_charge(static_cast<Nanos>(it->second.size()) *
                     site_.config().sim_nanos_per_compiled_byte);
    auto prog = std::make_shared<const microc::Program>(
        std::move(compiled).value());
    binaries_[{key, site_.config().platform}] = prog;
    // Our own compiler's output always verifies.
    auto exec = make_bytecode_executable(std::move(prog));
    if (!exec.is_ok()) return std::nullopt;
    cache_[key] = exec.value();
    return exec.value();
  }
  return std::nullopt;
}

void CodeManager::request_executable(ProgramId pid, MicrothreadId tid,
                                     ExecCallback cb) {
  if (auto local = resolve_local(pid, tid); local.has_value()) {
    cb(*local);
    return;
  }
  Key key{pid, tid};
  bool first = !pending_.contains(key);
  pending_[key].push_back(std::move(cb));
  if (first) fetch_remote(pid, tid);
}

void CodeManager::fetch_remote(ProgramId pid, MicrothreadId tid) {
  const ProgramInfo* info = site_.programs().find(pid);
  Key key{pid, tid};
  if (info == nullptr) {
    finish(key, Status::error(ErrorCode::kNotFound, "unknown program"));
    return;
  }
  // Target order: a nearby code distribution site first ("useful to e.g.
  // supply subclusters with microthreads fast"), then the program's home
  // site, which "is implicitly a code distribution site".
  auto targets = std::make_shared<std::vector<SiteId>>();
  for (SiteId sid : site_.cluster().code_distribution_sites()) {
    if (sid != site_.id()) targets->push_back(sid);
  }
  SiteId home = site_.cluster().resolve_successor(info->home_site);
  if (std::find(targets->begin(), targets->end(), home) == targets->end()) {
    targets->push_back(home);
  }
  // Last resort: every other live member. After a crash-recovery the home
  // recorded in our ProgramInfo may be stale (the takeover site only
  // broadcasts the re-homed info to sites alive at that moment), but any
  // site that ever compiled the thread serves it from its source cache.
  for (SiteId sid : site_.cluster().known_sites(/*alive_only=*/true)) {
    if (std::find(targets->begin(), targets->end(), sid) == targets->end()) {
      targets->push_back(sid);
    }
  }
  std::erase(*targets, site_.id());
  if (targets->empty()) {
    finish(key, Status::error(ErrorCode::kNotFound,
                              "no code for microthread anywhere"));
    return;
  }
  fetch_from(pid, tid, targets, 0);
}

void CodeManager::fetch_from(ProgramId pid, MicrothreadId tid,
                             std::shared_ptr<std::vector<SiteId>> targets,
                             std::size_t index) {
  Key key{pid, tid};
  if (index >= targets->size()) {
    finish(key, Status::error(ErrorCode::kNotFound,
                              "no code for microthread anywhere"));
    return;
  }

  ByteWriter w;
  w.u32(tid);
  w.str(site_.config().platform);
  SdMessage req;
  req.dst = (*targets)[index];
  req.src_mgr = req.dst_mgr = ManagerId::kCode;
  req.type = MsgType::kCodeRequest;
  req.program = pid;
  req.payload = w.take();

  (void)site_.messages().request(req, [this, pid, tid, key, targets,
                                       index](Result<SdMessage> r) {
    if (!r.is_ok()) {
      fetch_from(pid, tid, targets, index + 1);
      return;
    }
    const SdMessage& reply = r.value();
    const ProgramInfo* pinfo = site_.programs().find(pid);
    if (pinfo == nullptr) {
      finish(key, Status::error(ErrorCode::kNotFound, "program vanished"));
      return;
    }
    switch (reply.type) {
      case MsgType::kCodeReplyBinary: {
        auto prog = microc::Program::deserialize(reply.payload);
        if (!prog.is_ok()) {
          finish(key, prog.status());
          return;
        }
        ++binary_fetches;
        auto shared = std::make_shared<const microc::Program>(
            std::move(prog).value());
        auto exec = make_bytecode_executable(shared);
        if (!exec.is_ok()) {
          // Artifact deserialized but failed verification: don't cache it;
          // a later target (or source fallback) may still serve us.
          fetch_from(pid, tid, targets, index + 1);
          return;
        }
        binaries_[{key, site_.config().platform}] = shared;
        cache_[key] = exec.value();
        finish(key, exec.value());
        break;
      }
      case MsgType::kCodeReplySource: {
        // "If the microthread is not available in the new site's platform
        // specific binary format, it will receive the source code ... and
        // compile it on the fly."
        ++source_fetches;
        ByteReader rd(reply.payload);
        std::string source;
        try {
          source = rd.str();
        } catch (const DecodeError& e) {
          finish(key, Status::error(ErrorCode::kCorrupt, e.what()));
          return;
        }
        sources_[key] = source;
        auto started = std::chrono::steady_clock::now();
        auto compiled =
            microc::compile(source, pinfo->thread_names[tid]);
        compile_ns.record(wall_nanos_since(started));
        if (!compiled.is_ok()) {
          finish(key, compiled.status());
          return;
        }
        ++compiles;
        site_.sim_charge(static_cast<Nanos>(source.size()) *
                         site_.config().sim_nanos_per_compiled_byte);
        auto shared = std::make_shared<const microc::Program>(
            std::move(compiled).value());
        binaries_[{key, site_.config().platform}] = shared;
        auto exec = make_bytecode_executable(shared);
        if (!exec.is_ok()) {
          finish(key, exec.status());
          return;
        }
        cache_[key] = exec.value();
        finish(key, exec.value());

        // Upload the fresh binary "so that other sites will receive the
        // binary code at first go".
        upload_binary(pid, tid, shared);
        break;
      }
      default:
        // kCodeReplyMissing (or anything unexpected): this target cannot
        // serve the thread, but a later one still may.
        fetch_from(pid, tid, targets, index + 1);
    }
  });
}

void CodeManager::upload_binary(
    ProgramId pid, MicrothreadId tid,
    const std::shared_ptr<const microc::Program>& binary) {
  const ProgramInfo* info = site_.programs().find(pid);
  if (info == nullptr) return;
  // Distribution set: the home site plus every advertised code
  // distribution site ("bound to store every microthread").
  std::vector<SiteId> targets = site_.cluster().code_distribution_sites();
  SiteId home = site_.cluster().resolve_successor(info->home_site);
  if (std::find(targets.begin(), targets.end(), home) == targets.end()) {
    targets.push_back(home);
  }
  std::erase(targets, site_.id());

  ByteWriter w;
  w.u32(tid);
  w.str(site_.config().platform);
  w.blob(binary->serialize());
  for (SiteId sid : targets) {
    SdMessage up;
    up.dst = sid;
    up.src_mgr = up.dst_mgr = ManagerId::kCode;
    up.type = MsgType::kCodeUpload;
    up.program = pid;
    up.payload = w.bytes();
    (void)site_.messages().send(std::move(up));
  }
}

void CodeManager::finish(const Key& key, Result<Executable> result) {
  auto node = pending_.extract(key);
  if (node.empty()) return;
  for (auto& cb : node.mapped()) cb(result);
}

void CodeManager::handle(const SdMessage& msg) {
  switch (msg.type) {
    case MsgType::kCodeRequest: {
      MicrothreadId tid = 0;
      PlatformId platform;
      try {
        ByteReader r(msg.payload);
        tid = r.u32();
        platform = r.str();
      } catch (const DecodeError&) {
        break;
      }
      Key key{msg.program, tid};
      SdMessage reply;
      reply.src_mgr = reply.dst_mgr = ManagerId::kCode;
      if (auto it = binaries_.find({key, platform}); it != binaries_.end()) {
        reply.type = MsgType::kCodeReplyBinary;
        reply.payload = it->second->serialize();
      } else if (auto src = sources_.find(key); src != sources_.end()) {
        reply.type = MsgType::kCodeReplySource;
        ByteWriter w;
        w.str(src->second);
        reply.payload = w.take();
      } else {
        reply.type = MsgType::kCodeReplyMissing;
      }
      (void)site_.messages().respond(msg, std::move(reply));
      break;
    }
    case MsgType::kCodeUpload: {
      try {
        ByteReader r(msg.payload);
        MicrothreadId tid = r.u32();
        PlatformId platform = r.str();
        auto blob = r.blob();
        auto prog = microc::Program::deserialize(blob);
        if (prog.is_ok()) {
          ++uploads_received;
          binaries_[{Key{msg.program, tid}, platform}] =
              std::make_shared<const microc::Program>(std::move(prog).value());
        }
      } catch (const DecodeError&) {
      }
      break;
    }
    default:
      SDVM_WARN(site_.tag()) << "code manager: unexpected "
                             << to_string(msg.type);
  }
}

std::vector<std::pair<MicrothreadId, std::string>> CodeManager::export_sources(
    ProgramId pid) const {
  std::vector<std::pair<MicrothreadId, std::string>> out;
  for (const auto& [key, src] : sources_) {
    if (key.pid == pid) out.emplace_back(key.tid, src);
  }
  return out;
}

void CodeManager::import_sources(
    ProgramId pid,
    const std::vector<std::pair<MicrothreadId, std::string>>& sources) {
  for (const auto& [tid, src] : sources) {
    sources_.emplace(Key{pid, tid}, src);
  }
}

void CodeManager::drop_program(ProgramId pid) {
  std::erase_if(cache_, [&](const auto& kv) { return kv.first.pid == pid; });
  std::erase_if(sources_, [&](const auto& kv) { return kv.first.pid == pid; });
  std::erase_if(binaries_,
                [&](const auto& kv) { return kv.first.first.pid == pid; });
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->first.pid == pid) {
      for (auto& cb : it->second) {
        cb(Status::error(ErrorCode::kNotFound, "program terminated"));
      }
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace sdvm
