// sdvm::metrics — the per-site metrics subsystem behind the unified
// introspection API (paper §4: the site manager "collects performance data
// about the local site"). Every manager owns its instruments inline (plain
// word-sized slots, zero heap on the increment path; all mutation happens
// under the site lock) and registers them once with the site's
// MetricsRegistry. A snapshot() materializes every registered instrument
// into a serializable MetricsSnapshot that can travel the wire
// (kMetricsQuery/kMetricsReply), merge cluster-wide, and export as text or
// JSON for sdvm-top and the bench harness.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace sdvm::metrics {

/// Monotonically increasing event count. Drop-in for the managers' former
/// bare std::uint64_t statistics fields: ++/+=/read-as-integer all work, so
/// legacy call sites (tests, benches) compile unchanged.
class Counter {
 public:
  Counter& operator++() {
    ++v_;
    return *this;
  }
  std::uint64_t operator++(int) { return v_++; }
  Counter& operator+=(std::uint64_t d) {
    v_ += d;
    return *this;
  }
  // NOLINTNEXTLINE: implicit read keeps `u64 x = mgr.counter` call sites.
  operator std::uint64_t() const { return v_; }
  [[nodiscard]] std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

/// Fixed-bucket latency histogram over nanosecond durations. One shared
/// log-scale bucket layout (10us … 10s, plus overflow) keeps merging
/// trivial: cluster-wide aggregation is element-wise addition.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 8;
  /// Upper bounds (inclusive) of buckets 0..6 in nanos; bucket 7 = +inf.
  static constexpr std::array<std::int64_t, kBuckets - 1> kBounds = {
      10'000,         100'000,        1'000'000,     10'000'000,
      100'000'000,    1'000'000'000,  10'000'000'000};

  void record(Nanos v) {
    if (v < 0) v = 0;
    std::size_t i = 0;
    while (i < kBounds.size() && v > kBounds[i]) ++i;
    ++counts_[i];
    sum_ += static_cast<std::uint64_t>(v);
    ++count_;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& counts() const {
    return counts_;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t sum_ = 0;
  std::uint64_t count_ = 0;
};

enum class Kind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

[[nodiscard]] const char* to_string(Kind k);

/// One materialized instrument inside a snapshot.
struct MetricValue {
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t count = 0;  // counter value, or histogram sample count
  std::int64_t gauge = 0;   // gauge reading
  std::uint64_t sum = 0;    // histogram sum of recorded nanos
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};

  void serialize(ByteWriter& w) const;
  static MetricValue deserialize(ByteReader& r);  // throws DecodeError

  friend bool operator==(const MetricValue&, const MetricValue&) = default;
};

/// A point-in-time reading of every registered instrument; the unit that
/// travels in kMetricsReply and aggregates cluster-wide.
struct MetricsSnapshot {
  std::vector<MetricValue> values;  // sorted by name

  [[nodiscard]] const MetricValue* find(const std::string& name) const;
  /// Counter/gauge value by name, 0 when absent (gauges: the reading).
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] std::int64_t gauge_value(const std::string& name) const;

  void add_counter(const std::string& name, std::uint64_t value);
  void add_gauge(const std::string& name, std::int64_t value);
  void add_histogram(const std::string& name, const Histogram& h);

  /// Element-wise aggregation: counters and histogram buckets add; gauges
  /// add too (cluster-wide queue depth is the sum of per-site depths).
  /// Metrics present only on one side are kept as-is.
  void merge(const MetricsSnapshot& other);

  void serialize(ByteWriter& w) const;
  static Result<MetricsSnapshot> deserialize(ByteReader& r);

  [[nodiscard]] std::string to_text(const std::string& indent = "") const;
  [[nodiscard]] std::string to_json() const;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;

 private:
  /// Keeps `values` sorted so merge() is a linear walk and wire bytes are
  /// deterministic.
  void insert_sorted(MetricValue v);
};

/// Per-site catalog of instruments. Managers register pointers to their
/// inline slots once at site construction; snapshot() walks the catalog
/// under the site lock. Gauges are sampled through probes (queue depths
/// etc. are derived values); providers emit dynamic families (per-message-
/// type counts) whose member set is only known at snapshot time.
class MetricsRegistry {
 public:
  using GaugeProbe = std::function<std::int64_t()>;
  using Provider = std::function<void(MetricsSnapshot&)>;

  void register_counter(std::string name, const Counter* counter);
  void register_gauge(std::string name, GaugeProbe probe);
  void register_histogram(std::string name, const Histogram* histogram);
  void register_provider(Provider provider);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Registered static names (counters, gauges, histograms), sorted — the
  /// stable metric catalog identical across deployment modes.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  struct Entry {
    std::string name;
    Kind kind;
    const Counter* counter = nullptr;
    GaugeProbe probe;
    const Histogram* histogram = nullptr;
  };
  std::vector<Entry> entries_;
  std::vector<Provider> providers_;
};

/// Minimal JSON string escaping for metric names and site names.
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace sdvm::metrics
