#include "runtime/program.hpp"

namespace sdvm {

void ProgramInfo::serialize(ByteWriter& w) const {
  w.program(id);
  w.str(name);
  w.site(home_site);
  w.u32(entry_thread);
  w.u32(static_cast<std::uint32_t>(thread_names.size()));
  for (const auto& t : thread_names) w.str(t);
  w.u32(static_cast<std::uint32_t>(args.size()));
  for (auto a : args) w.i64(a);
}

Result<ProgramInfo> ProgramInfo::deserialize(ByteReader& r) {
  try {
    ProgramInfo info;
    info.id = r.program();
    info.name = r.str();
    info.home_site = r.site();
    info.entry_thread = r.u32();
    std::uint32_t nt = r.count(/*min_bytes_each=*/4);
    info.thread_names.reserve(nt);
    for (std::uint32_t i = 0; i < nt; ++i) info.thread_names.push_back(r.str());
    std::uint32_t na = r.count(/*min_bytes_each=*/8);
    info.args.reserve(na);
    for (std::uint32_t i = 0; i < na; ++i) info.args.push_back(r.i64());
    return info;
  } catch (const DecodeError& e) {
    return Status::error(ErrorCode::kCorrupt,
                         std::string("bad ProgramInfo: ") + e.what());
  }
}

NativeRegistry& NativeRegistry::instance() {
  static NativeRegistry r;
  return r;
}

void NativeRegistry::register_fn(const std::string& program_name,
                                 const std::string& thread_name, NativeFn fn) {
  std::lock_guard lock(mu_);
  fns_[program_name + "\x1f" + thread_name] = std::move(fn);
}

NativeFn NativeRegistry::find(const std::string& program_name,
                              const std::string& thread_name) const {
  std::lock_guard lock(mu_);
  auto it = fns_.find(program_name + "\x1f" + thread_name);
  return it == fns_.end() ? nullptr : it->second;
}

void NativeRegistry::clear_program(const std::string& program_name) {
  std::lock_guard lock(mu_);
  std::string prefix = program_name + "\x1f";
  for (auto it = fns_.begin(); it != fns_.end();) {
    if (it->first.starts_with(prefix)) {
      it = fns_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace sdvm
