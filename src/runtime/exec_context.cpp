#include "runtime/exec_context.hpp"

#include <mutex>

#include "runtime/site.hpp"

namespace sdvm {

namespace {
[[noreturn]] void abort_thread(const std::string& what) {
  // Both native and bytecode microthreads unwind through this; the
  // processing manager logs the trap and consumes the frame.
  throw microc::IntrinsicError(what);
}
}  // namespace

ExecContext::ExecContext(Site& site, Microframe frame, ProgramInfo info)
    : site_(site), frame_(std::move(frame)), info_(std::move(info)) {}

int ExecContext::num_params() const {
  return static_cast<int>(frame_.params.size());
}

std::int64_t ExecContext::param_int(int index) const {
  if (index < 0 || index >= num_params()) {
    abort_thread("parameter index " + std::to_string(index) +
                 " out of range");
  }
  try {
    return frame_.param_int(static_cast<std::size_t>(index));
  } catch (const DecodeError& e) {
    abort_thread(e.what());
  }
}

std::span<const std::byte> ExecContext::param_bytes(int index) const {
  if (index < 0 || index >= num_params()) {
    abort_thread("parameter index " + std::to_string(index) +
                 " out of range");
  }
  return frame_.params[static_cast<std::size_t>(index)];
}

int ExecContext::num_args() const {
  return static_cast<int>(info_.args.size());
}

std::int64_t ExecContext::arg(int index) const {
  if (index < 0 || static_cast<std::size_t>(index) >= info_.args.size()) {
    abort_thread("program argument index " + std::to_string(index) +
                 " out of range");
  }
  return info_.args[static_cast<std::size_t>(index)];
}

GlobalAddress ExecContext::spawn(std::string_view thread_name, int nparams,
                                 int priority) {
  if (nparams < 0) abort_thread("negative parameter count");
  auto tid = info_.thread_by_name(std::string(thread_name));
  if (!tid.has_value()) {
    abort_thread("spawn of unknown microthread '" + std::string(thread_name) +
                 "'");
  }
  std::lock_guard lk(site_.lock());
  return site_.memory().create_frame(info_.id, *tid,
                                     static_cast<std::size_t>(nparams),
                                     priority);
}

void ExecContext::send_int(GlobalAddress frame, int slot, std::int64_t value) {
  send_bytes(frame, slot, to_bytes(value));
}

void ExecContext::send_bytes(GlobalAddress frame, int slot,
                             std::span<const std::byte> value) {
  if (slot < 0) abort_thread("negative slot");
  std::lock_guard lk(site_.lock());
  Status st = site_.memory().apply_param(
      frame, static_cast<std::size_t>(slot),
      std::vector<std::byte>(value.begin(), value.end()));
  if (!st.is_ok()) {
    SDVM_WARN(site_.tag()) << "send to frame " << frame.value
                           << " slot " << slot << ": " << st.to_string();
  }
}

GlobalAddress ExecContext::alloc_global(std::int64_t nwords) {
  if (nwords < 0) abort_thread("negative allocation size");
  std::lock_guard lk(site_.lock());
  return site_.memory().alloc_object(info_.id, nwords);
}

std::int64_t ExecContext::mem_read(GlobalAddress addr, std::int64_t index) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::shared_ptr<AttractionMemory::FetchState> wait;
    {
      std::lock_guard lk(site_.lock());
      auto r = site_.memory().try_read_word(addr, index, &wait);
      if (wait == nullptr) {
        if (!r.is_ok()) abort_thread(r.status().to_string());
        return r.value();
      }
    }
    wait->wait();
    if (!wait->status.is_ok()) abort_thread(wait->status.to_string());
    // Object may already have migrated away again; retry.
  }
  abort_thread("memory object ping-ponging, giving up");
}

void ExecContext::mem_write(GlobalAddress addr, std::int64_t index,
                            std::int64_t value) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::shared_ptr<AttractionMemory::FetchState> wait;
    {
      std::lock_guard lk(site_.lock());
      Status st = site_.memory().try_write_word(addr, index, value, &wait);
      if (wait == nullptr) {
        if (!st.is_ok()) abort_thread(st.to_string());
        return;
      }
    }
    wait->wait();
    if (!wait->status.is_ok()) abort_thread(wait->status.to_string());
  }
  abort_thread("memory object ping-ponging, giving up");
}

void ExecContext::out(std::int64_t value) {
  std::lock_guard lk(site_.lock());
  site_.io().output_int(info_.id, value);
}

void ExecContext::out_str(std::string_view text) {
  std::lock_guard lk(site_.lock());
  site_.io().output_str(info_.id, std::string(text));
}

std::string ExecContext::file_read(std::string_view path) {
  std::shared_ptr<IoManager::IoWait> wait;
  {
    std::lock_guard lk(site_.lock());
    auto r = site_.io().try_file_read(std::string(path), &wait);
    if (wait == nullptr) {
      if (!r.is_ok()) abort_thread("file_read: " + r.status().to_string());
      return std::move(r).value();
    }
  }
  wait->wait();
  if (!wait->status.is_ok()) {
    abort_thread("file_read: " + wait->status.to_string());
  }
  return wait->data;
}

void ExecContext::file_write(std::string_view path, std::string_view data) {
  std::shared_ptr<IoManager::IoWait> wait;
  {
    std::lock_guard lk(site_.lock());
    Status st =
        site_.io().try_file_write(std::string(path), std::string(data), &wait);
    if (wait == nullptr) {
      if (!st.is_ok()) abort_thread("file_write: " + st.to_string());
      return;
    }
  }
  wait->wait();
  if (!wait->status.is_ok()) {
    abort_thread("file_write: " + wait->status.to_string());
  }
}

void ExecContext::exit_program(std::int64_t code) {
  exit_requested_ = true;
  exit_code_ = code;
  std::lock_guard lk(site_.lock());
  site_.programs().terminate(info_.id, code);
}

void ExecContext::charge(std::int64_t cycles) {
  if (cycles > 0) charged_ += cycles;
}

SiteId ExecContext::site() const {
  return site_.id();
}

}  // namespace sdvm
