// Sharded homesite directory: the object directory is hash-partitioned
// into a fixed number of logical shards, each mapped onto the live
// membership with rendezvous (highest-random-weight) hashing — a
// consistent-hashing scheme, so a join/leave/crash only remigrates the
// shards whose argmax site changed, never the whole directory. Authority
// over a shard is an epoch-numbered ownership lease; the wire payloads for
// lease announcements, handoff, crash rebuild and stale-route rejection
// live here so they can be fuzzed and round-tripped in isolation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/serialize.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace sdvm {

/// Number of logical directory shards. Fixed for the cluster lifetime;
/// small enough that per-shard state is negligible, large enough that a
/// membership change remigrates ~1/n of the directory per joined site.
inline constexpr std::uint32_t kNumShards = 16;

/// Shard of a global address (FNV-1a over the address bits). Every site
/// computes the same shard for the same address with no coordination.
[[nodiscard]] std::uint32_t shard_of(GlobalAddress addr);

/// Deterministic target holder for a shard given a set of live site ids:
/// rendezvous hashing picks argmax over hash(shard, site). Any two sites
/// with the same membership view agree on the target, and removing one
/// site only moves the shards whose argmax it was.
[[nodiscard]] SiteId shard_target(std::uint32_t shard,
                                  const std::vector<SiteId>& live);

/// One shard's ownership lease as a site currently believes it: who holds
/// the shard and at which epoch. Epochs only grow; a holder change always
/// comes with a strictly higher epoch (ties broken by lower site id), so
/// overlapping-authority claims are decidable from the numbers alone.
struct ShardLease {
  SiteId holder = kInvalidSite;
  std::uint64_t epoch = 0;
};

/// kShardLease payload: a batch of (shard, holder, epoch) announcements,
/// burst to every live site when leases change hands.
struct ShardLeaseAnnounce {
  struct Entry {
    std::uint32_t shard = 0;
    SiteId holder = kInvalidSite;
    std::uint64_t epoch = 0;
  };
  std::vector<Entry> entries;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static Result<ShardLeaseAnnounce> deserialize(ByteReader& r);
};

/// One directory entry riding a handoff or rebuild reply.
struct ShardDirEntry {
  GlobalAddress addr;
  SiteId owner = kInvalidSite;
  ProgramId program;
};

/// kShardHandoff payload: graceful authority transfer — the shard id, the
/// new lease epoch the receiver assumes, and the directory entries.
struct ShardHandoff {
  std::uint32_t shard = 0;
  std::uint64_t epoch = 0;
  std::vector<ShardDirEntry> entries;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static Result<ShardHandoff> deserialize(ByteReader& r);
};

/// kShardRecover payload: a crash successor at `epoch` asks every live
/// site to re-register what it knows of the shard.
struct ShardRecover {
  std::uint32_t shard = 0;
  std::uint64_t epoch = 0;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static Result<ShardRecover> deserialize(ByteReader& r);
};

/// kShardRecoverReply payload: the sender's contribution to a rebuild —
/// objects it physically owns plus stale directory entries it still held.
struct ShardRecoverReply {
  std::uint32_t shard = 0;
  std::uint64_t epoch = 0;
  std::vector<ShardDirEntry> entries;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static Result<ShardRecoverReply> deserialize(ByteReader& r);
};

/// kShardRegister payload: an allocator (or a restored snapshot) tells the
/// shard holder that `owner` physically holds `addr`.
struct ShardRegister {
  GlobalAddress addr;
  ProgramId program;
  SiteId owner = kInvalidSite;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static Result<ShardRegister> deserialize(ByteReader& r);
};

/// kShardStale payload: a shard-routed request reached a site that is not
/// (or no longer) authoritative; it answers with its best lease knowledge
/// so the requester can re-route. Never silently served.
struct ShardStale {
  std::uint32_t shard = 0;
  SiteId holder = kInvalidSite;
  std::uint64_t epoch = 0;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static Result<ShardStale> deserialize(ByteReader& r);
};

/// kObjectRequest payload with the shard route header: the address plus
/// the (shard, epoch) the requester believes authoritative. A receiver
/// whose lease disagrees rejects with kShardStale instead of serving.
struct ShardRoutedRequest {
  GlobalAddress addr;
  std::uint32_t shard = 0;
  std::uint64_t epoch = 0;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static Result<ShardRoutedRequest> deserialize(ByteReader& r);
};

}  // namespace sdvm
