#include "runtime/scheduling_manager.hpp"

#include <algorithm>

#include "runtime/site.hpp"

namespace sdvm {

void SchedulingManager::register_metrics(metrics::MetricsRegistry& registry) {
  registry.register_counter("sched.help_requests_sent", &help_requests_sent);
  registry.register_counter("sched.help_frames_given", &help_frames_given);
  registry.register_counter("sched.help_frames_received",
                            &help_frames_received);
  registry.register_counter("sched.cant_help_received", &cant_help_received);
  registry.register_counter("sched.frames_enqueued", &frames_enqueued);
  registry.register_counter("sched.starvation_events", &starvation_events);
  registry.register_gauge("sched.executable_depth", [this] {
    return static_cast<std::int64_t>(executable_.size());
  });
  registry.register_gauge("sched.ready_depth", [this] {
    return static_cast<std::int64_t>(ready_.size());
  });
}

void SchedulingManager::on_executable(Microframe frame) {
  ProgramId pid = frame.program;
  MicrothreadId tid = frame.thread;
  FrameId id = frame.id;
  ++frames_enqueued;
  executable_.push_back(std::move(frame));

  if (!code_pending_.insert(id.value).second) return;
  site_.trace(FrameEvent::kCodeRequested, id, tid);

  // The program may be unknown here (frame arrived from another site);
  // resolve its description first, then the code.
  site_.programs().ensure_known(pid, id.home_site(), [this, pid, tid,
                                                      id](Status st) {
    if (!st.is_ok()) {
      on_code_ready(id, st);
      return;
    }
    site_.code().request_executable(
        pid, tid, [this, id](Result<Executable> r) { on_code_ready(id, r); });
  });
}

void SchedulingManager::on_code_ready(FrameId id, Result<Executable> exec) {
  code_pending_.erase(id.value);
  auto it = std::find_if(executable_.begin(), executable_.end(),
                         [&](const Microframe& f) { return f.id == id; });
  if (it == executable_.end()) return;  // shipped away meanwhile

  if (!exec.is_ok()) {
    // Transient failures happen around crashes (the code home died and its
    // backup hasn't taken over yet). Retry before condemning the program.
    int attempts = ++code_retry_[id.value];
    if (attempts <= kMaxCodeRetries) {
      SDVM_WARN(site_.tag()) << "code for frame " << id.value
                             << " unavailable (" << exec.status().to_string()
                             << "), retry " << attempts;
      ProgramId pid = it->program;
      MicrothreadId tid = it->thread;
      site_.schedule_after(site_.config().help_retry_interval * 10,
                           [this, pid, tid, id] {
        auto still = std::find_if(
            executable_.begin(), executable_.end(),
            [&](const Microframe& f) { return f.id == id; });
        if (still == executable_.end()) return;
        if (!code_pending_.insert(id.value).second) return;
        site_.programs().ensure_known(pid, pid.home_site(),
                                      [this, pid, tid, id](Status st) {
          if (!st.is_ok()) {
            on_code_ready(id, st);
            return;
          }
          site_.code().request_executable(
              pid, tid,
              [this, id](Result<Executable> r) { on_code_ready(id, r); });
        });
      });
      return;
    }
    SDVM_ERROR(site_.tag()) << "no code for frame " << id.value << ": "
                            << exec.status().to_string()
                            << " — failing its program";
    code_retry_.erase(id.value);
    ProgramId pid = it->program;
    executable_.erase(it);
    site_.programs().terminate(pid, /*exit_code=*/-1);
    return;
  }
  code_retry_.erase(id.value);

  ReadyWork work;
  work.frame = std::move(*it);
  work.exec = std::move(exec).value();
  executable_.erase(it);
  site_.trace(FrameEvent::kBecameReady, work.frame.id, work.frame.thread);
  ready_.push_back(std::move(work));
  site_.processing().kick();
  site_.driver().notify_work();
}

std::optional<ReadyWork> SchedulingManager::take_ready() {
  if (frozen_ || ready_.empty()) return std::nullopt;
  ReadyWork work;
  switch (site_.config().local_sched) {
    case LocalSchedPolicy::kFifo:
      work = std::move(ready_.front());
      ready_.pop_front();
      break;
    case LocalSchedPolicy::kLifo:
      work = std::move(ready_.back());
      ready_.pop_back();
      break;
    case LocalSchedPolicy::kPriority: {
      auto it = std::max_element(ready_.begin(), ready_.end(),
                                 [](const ReadyWork& a, const ReadyWork& b) {
                                   return a.frame.priority < b.frame.priority;
                                 });
      work = std::move(*it);
      ready_.erase(it);
      break;
    }
  }
  return work;
}

std::optional<Microframe> SchedulingManager::pick_frame_to_give() {
  // Keep at least one unit of work for ourselves unless we're busy anyway.
  std::size_t total = queued_total();
  bool busy = !site_.processing().idle();
  if (total == 0 || (total == 1 && !busy)) return std::nullopt;

  // Prefer frames whose code we haven't resolved yet (cheapest to move).
  if (!executable_.empty()) {
    Microframe f;
    if (site_.config().help_reply == HelpReplyPolicy::kLifo) {
      f = std::move(executable_.back());
      executable_.pop_back();
    } else {
      f = std::move(executable_.front());
      executable_.pop_front();
    }
    code_pending_.erase(f.id.value);  // cancel interest; callback will no-op
    return f;
  }
  if (!ready_.empty()) {
    ReadyWork w;
    if (site_.config().help_reply == HelpReplyPolicy::kLifo) {
      w = std::move(ready_.back());
      ready_.pop_back();
    } else {
      w = std::move(ready_.front());
      ready_.pop_front();
    }
    return std::move(w.frame);
  }
  return std::nullopt;
}

void SchedulingManager::on_starving() {
  if (frozen_ || help_in_flight_) return;
  Nanos now = site_.clock().now();
  if (last_help_request_ >= 0 &&
      now - last_help_request_ < site_.config().help_retry_interval) {
    return;
  }
  auto target = site_.cluster().pick_help_target(help_excluded_);
  if (!target.has_value()) {
    ++starvation_events;
    help_excluded_.clear();  // every peer said no; start over next round
    return;
  }

  last_help_request_ = now;
  help_in_flight_ = true;
  ++help_requests_sent;

  // Piggyback our SiteInfo so the target learns about us ("A's id and
  // status information is then propagated ... by and by").
  site_.cluster().refresh_local_info();
  ByteWriter w;
  site_.cluster().local_info().serialize(w);

  SdMessage req;
  req.dst = *target;
  req.src_mgr = req.dst_mgr = ManagerId::kScheduling;
  req.type = MsgType::kHelpRequest;
  req.payload = w.take();

  (void)site_.messages().request(req, [this, target =
                                           *target](Result<SdMessage> r) {
    help_in_flight_ = false;
    if (!r.is_ok()) {
      help_excluded_.push_back(target);
      schedule_retry();
      return;
    }
    const SdMessage& reply = r.value();
    if (reply.type == MsgType::kHelpReplyNone) {
      ++cant_help_received;
      help_excluded_.push_back(target);
      schedule_retry();
      return;
    }
    if (reply.type != MsgType::kHelpReplyFrame) return;
    help_excluded_.clear();
    try {
      ByteReader rd(reply.payload);
      bool has_info = rd.boolean();
      if (has_info) {
        auto info = ProgramInfo::deserialize(rd);
        if (info.is_ok() &&
            site_.programs().find(info.value().id) == nullptr) {
          site_.programs().register_info(info.value());
        }
      }
      auto frame = Microframe::deserialize(rd);
      if (!frame.is_ok()) return;
      ++help_frames_received;
      site_.memory().adopt_frame(std::move(frame).value());
    } catch (const DecodeError&) {
    }
  });

  // Lost-reply safety net: if the target never answers (e.g. it died), we
  // must not stay starving forever.
  site_.schedule_after(site_.config().help_retry_interval * 8, [this] {
    if (help_in_flight_ &&
        site_.clock().now() - last_help_request_ >=
            site_.config().help_retry_interval * 8) {
      help_in_flight_ = false;
      site_.check_starvation();
    }
  });
}

void SchedulingManager::schedule_retry() {
  site_.schedule_after(site_.config().help_retry_interval,
                       [this] { site_.check_starvation(); });
}

void SchedulingManager::handle(const SdMessage& msg) {
  switch (msg.type) {
    case MsgType::kHelpRequest: {
      try {
        ByteReader r(msg.payload);
        auto info = SiteInfo::deserialize(r);
        if (info.is_ok()) site_.cluster().merge(info.value());
      } catch (const DecodeError&) {
      }

      auto frame = frozen_ ? std::nullopt : pick_frame_to_give();
      SdMessage reply;
      reply.src_mgr = reply.dst_mgr = ManagerId::kScheduling;
      if (!frame.has_value()) {
        reply.type = MsgType::kHelpReplyNone;
      } else {
        ++help_frames_given;
        site_.trace(FrameEvent::kGivenAway, frame->id, frame->thread);
        reply.type = MsgType::kHelpReplyFrame;
        reply.program = frame->program;
        ByteWriter w;
        const ProgramInfo* info = site_.programs().find(frame->program);
        w.boolean(info != nullptr);
        if (info != nullptr) info->serialize(w);
        frame->serialize(w);
        reply.payload = w.take();
      }
      (void)site_.messages().respond(msg, std::move(reply));
      break;
    }
    case MsgType::kHelpReplyFrame: {
      // Unsolicited: a reply given to a site that signed off before it
      // arrived, relayed here by the departed site's pump. Adopt the frame
      // — it was already removed from the giver's queues.
      try {
        ByteReader rd(msg.payload);
        bool has_info = rd.boolean();
        if (has_info) {
          auto info = ProgramInfo::deserialize(rd);
          if (info.is_ok() &&
              site_.programs().find(info.value().id) == nullptr) {
            site_.programs().register_info(info.value());
          }
        }
        auto frame = Microframe::deserialize(rd);
        if (frame.is_ok()) {
          ++help_frames_received;
          site_.memory().adopt_frame(std::move(frame).value());
        }
      } catch (const DecodeError&) {
      }
      break;
    }
    case MsgType::kHelpReplyNone:
      break;  // relayed "can't help" for a departed site: nothing to do
    default:
      SDVM_WARN(site_.tag()) << "scheduling manager: unexpected "
                             << to_string(msg.type);
  }
}

void SchedulingManager::drop_program(ProgramId pid) {
  clear_program_frames(pid);
}

std::vector<Microframe> SchedulingManager::snapshot_frames(
    ProgramId pid) const {
  bool all = !pid.valid();
  std::vector<Microframe> out;
  for (const auto& f : executable_) {
    if (all || f.program == pid) out.push_back(f);
  }
  for (const auto& w : ready_) {
    if (all || w.frame.program == pid) out.push_back(w.frame);
  }
  return out;
}

void SchedulingManager::clear_program_frames(ProgramId pid) {
  bool all = !pid.valid();
  std::erase_if(executable_, [&](const Microframe& f) {
    return all || f.program == pid;
  });
  std::erase_if(ready_, [&](const ReadyWork& w) {
    return all || w.frame.program == pid;
  });
}

}  // namespace sdvm
