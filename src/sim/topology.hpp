// Hierarchical network topology for SimCluster, modeled on SimGrid's
// zone routing: zones form a tree, each zone hosts sites and owns an
// uplink to its parent. The model between two sites is resolved once per
// zone pair — intra-zone traffic uses the zone's local link, inter-zone
// traffic sums uplink latencies along both paths to the lowest common
// ancestor and takes the bottleneck bandwidth — then cached in the
// fabric's zone-pair matrix, so per-send cost is two hash lookups no
// matter how deep the tree is.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "net/inproc.hpp"

namespace sdvm::sim {

/// One zone of the topology tree.
struct ZoneSpec {
  std::string name;
  std::string parent;    // empty = root-level zone
  int sites = 0;         // sites hosted directly in this zone
  double speed = 1.0;    // speed factor applied to hosted sites
  net::LinkModel local;  // link between two sites of this zone
  net::LinkModel up;     // link from this zone to its parent
};

/// Rejects topologies the simulator cannot route: empty or duplicate zone
/// names, unknown parents, cyclic parent chains, negative site counts, a
/// topology hosting zero sites overall, non-positive or NaN speed
/// factors, and loss probabilities outside [0, 1).
[[nodiscard]] Status validate_zones(const std::vector<ZoneSpec>& zones);

/// Flattened form: hosting zones in declaration order, with global site
/// index ranges and the resolved zone-pair link matrix.
struct ZoneTable {
  struct ZoneInfo {
    std::string name;
    int first_site = 0;  // global index of the zone's first site
    int sites = 0;
    double speed = 1.0;
  };
  std::vector<ZoneInfo> zones;  // only zones with sites > 0
  int total_sites = 0;
  std::vector<net::LinkModel> matrix;  // zi * zones.size() + zj

  [[nodiscard]] const net::LinkModel& link(int zi, int zj) const {
    return matrix[static_cast<std::size_t>(zi) * zones.size() +
                  static_cast<std::size_t>(zj)];
  }
  /// Hosting-zone index of a global site index.
  [[nodiscard]] int zone_of_site(int site_index) const;
};

/// Validates and flattens. The matrix covers every hosting-zone pair.
[[nodiscard]] Result<ZoneTable> build_zone_table(
    const std::vector<ZoneSpec>& zones);

/// Standard two-tier datacenter: `racks` racks of `sites_per_rack` sites
/// under one core switch. `intra` is the in-rack link, `up` each rack's
/// uplink (inter-rack traffic crosses two uplinks).
[[nodiscard]] std::vector<ZoneSpec> make_rack_topology(int racks,
                                                       int sites_per_rack,
                                                       net::LinkModel intra,
                                                       net::LinkModel up);

}  // namespace sdvm::sim
