// SimCluster: a whole SDVM cluster under the discrete-event simulator.
// Each site runs the exact same manager code as the threaded/TCP modes;
// only the clock (virtual), the transport (InProcNetwork routed through
// the event loop), and microthread execution (serialized, cost-accounted)
// differ. Used for Table 1 and every parameter-sweep bench.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <unordered_map>

#include "api/cluster.hpp"
#include "net/inproc.hpp"
#include "runtime/site.hpp"
#include "sim/event_loop.hpp"
#include "sim/topology.hpp"

namespace sdvm::sim {

class SimCluster final : public Cluster {
 public:
  struct Options {
    std::uint64_t seed = 1;
    net::LinkModel link;  // default latency/bandwidth between all sites

    /// Hierarchical topology. When non-empty, add_topology_sites() places
    /// one site per hosted slot, wires zone-pair link models into the
    /// fabric, and applies each zone's speed factor; sites added outside
    /// the topology (or with zones empty) use `link`.
    std::vector<ZoneSpec> zones;

    /// Give every site a MemStateStore owned by the cluster, so committed
    /// checkpoint epochs survive kill()+restart() the way a --state-dir
    /// survives a real daemon crash.
    bool durable_state = false;
    /// Seeded disk-fault injection on those stores (torn writes, bit
    /// flips, dropped writes). Only meaningful with durable_state.
    FaultyStateStore::Options disk_faults;

    Options() {
      link.latency = 100'000;  // 100 us, intranet class
      link.per_byte = 10;      // ~100 MB/s
    }

    /// Rejects models the fabric cannot run: loss is a drop *probability*
    /// and must lie in [0, 1) — a loss of exactly 1 would silence every
    /// link and negative values are meaningless. With zones set, also
    /// rejects malformed topologies (empty/duplicate names, unknown
    /// parents, cyclic routes, non-positive speed factors, zero hosted
    /// sites) via validate_zones().
    [[nodiscard]] Status validate() const;
  };

  /// The constructor clamps an out-of-range loss into [0, 1) after logging
  /// (callers wanting an error instead should check validate() first).
  explicit SimCluster(Options options = Options{});
  ~SimCluster() override;

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  /// Adds a site. The first bootstraps the cluster; later ones sign on via
  /// an existing site (default: the first) and this call runs the loop
  /// until the join completes. `contact_index` picks which member the new
  /// site knows — paper §3.4: "the one site it already knows".
  Site& add_site(SiteConfig config, int contact_index = 0);

  /// Convenience: n identical sites of the given speed.
  void add_sites(int n, double speed = 1.0, const SiteConfig& base = {});

  /// Builds the fleet described by Options::zones: one site per hosted
  /// slot, zone link models in the fabric, per-zone speed factors applied
  /// on top of `base.speed`. Fails if the topology does not validate.
  Status add_topology_sites(const SiteConfig& base = {});

  /// Hosting-zone index of a slot (-1 when placed outside the topology).
  [[nodiscard]] int zone_of(std::size_t index) const {
    return entries_.at(index)->zone;
  }

  /// Starts folding every network send decision into a running FNV-1a
  /// hash: (virtual time, from, to, size, delivered) per event. Two runs
  /// with the same seed and schedule must agree byte-for-byte — the
  /// golden-trace determinism tests compare exactly this value.
  void enable_event_hash();
  [[nodiscard]] std::uint64_t event_hash() const { return event_hash_; }

  [[nodiscard]] Site& site(std::size_t index) { return *entries_[index]->site; }
  [[nodiscard]] std::size_t size() const override { return entries_.size(); }

  /// Starts a program on `home_index` and returns its id.
  Result<ProgramId> start_program(const ProgramSpec& spec,
                                  std::size_t home_index = 0) override;

  /// Runs until the program terminates (or virtual deadline, <0 = none).
  /// Returns the exit code.
  Result<std::int64_t> run_program(ProgramId pid, Nanos deadline = -1);

  /// Cluster facade: alias for run_program (virtual-time mode).
  Result<std::int64_t> run(ProgramId pid, Nanos limit = -1) override {
    return run_program(pid, limit);
  }

  /// Graceful departure of a site mid-run.
  Result<SiteId> sign_off(std::size_t index);
  /// Uncontrolled crash: the site stops pumping and its traffic black-holes.
  void kill(std::size_t index);
  /// Cold restart of a (killed) slot: a brand-new Site with the same
  /// config and the same state store — the simulated equivalent of
  /// restarting sdvmd with the same --state-dir. Joins through any live
  /// member, or bootstraps a fresh cluster if none is left.
  Site& restart(std::size_t index);

  /// The durable store behind a slot (null without durable_state /
  /// state-store attachment). Survives kill() and restart().
  [[nodiscard]] std::shared_ptr<StateStore> state_store(std::size_t index) {
    return entries_.at(index)->store;
  }
  /// Disk faults injected so far across all slots (durable_state mode).
  [[nodiscard]] std::uint64_t disk_faults_injected() const;

  /// Output lines collected at the program's frontend.
  [[nodiscard]] std::vector<std::string> outputs(std::size_t frontend_index,
                                                 ProgramId pid);

  [[nodiscard]] EventLoop& loop() { return loop_; }
  [[nodiscard]] net::InProcNetwork& network() { return network_; }
  [[nodiscard]] Nanos now() const { return loop_.now(); }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Looks a site up by logical id (dead sites included).
  [[nodiscard]] Site* site_by_id(SiteId id);

  // --- observability facade (the Cluster interface) -----------------------

  /// Unified snapshot of one member site (Site::introspect()).
  [[nodiscard]] Result<SiteStatus> status(std::size_t index = 0) override;

  /// Cluster-wide aggregated snapshot, queried through the site at
  /// `via_index` (kMetricsQuery fan-out). Runs the event loop up to
  /// `timeout` virtual nanos; sites that do not answer land in
  /// `unreachable`.
  [[nodiscard]] Result<ClusterStatus> cluster_status(
      std::size_t via_index = 0, Nanos timeout = 2'000'000'000) override;

  /// Installs a frame-career trace hook on one site.
  Status install_trace_hook(std::size_t index, FrameTraceHook hook) override;

 private:
  class SimDriver;

  void install_memory_oracle(Site& site);
  void install_file_oracle(Site& site);

  Options options_;
  EventLoop loop_;
  net::InProcNetwork network_;
  /// Address -> slot index, so deliveries get tagged with the acted-on
  /// site for exploration mode. Covers retired incarnations too.
  std::unordered_map<std::string, std::uint32_t> slot_of_addr_;
  int pending_zone_ = -1;  // zone applied to the next wire_site()
  std::uint64_t event_hash_ = 1469598103934665603ULL;  // FNV-1a offset

  struct Entry {
    SiteConfig config;
    std::unique_ptr<SimDriver> driver;
    std::unique_ptr<net::InProcEndpoint> endpoint;
    std::unique_ptr<Site> site;
    bool killed = false;
    int zone = -1;  // hosting-zone index; survives restart()
    /// Owned here, not by the Site: survives restart().
    std::shared_ptr<StateStore> store;
    std::shared_ptr<FaultyStateStore> faulty;  // non-null when injecting
  };
  std::vector<std::unique_ptr<Entry>> entries_;

  void wire_site(Entry* e, std::size_t slot);

  /// Dead incarnations are kept, not destroyed: queued event-loop
  /// callbacks and network deliveries still hold raw pointers into them.
  struct Retired {
    std::unique_ptr<SimDriver> driver;
    std::unique_ptr<net::InProcEndpoint> endpoint;
    std::unique_ptr<Site> site;
  };
  std::vector<Retired> retired_;
};

}  // namespace sdvm::sim
