#include "sim/topology.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace sdvm::sim {

namespace {

Status check_loss(const std::string& zone, const char* which, double loss) {
  if (!(loss >= 0.0) || loss >= 1.0) {  // !(>=0) also catches NaN
    return Status::error(ErrorCode::kInvalidArgument,
                         "zone '" + zone + "' " + which +
                             " loss must be in [0, 1), got " +
                             std::to_string(loss));
  }
  return Status::ok();
}

}  // namespace

Status validate_zones(const std::vector<ZoneSpec>& zones) {
  if (zones.empty()) {
    return Status::error(ErrorCode::kInvalidArgument, "topology has no zones");
  }
  std::unordered_map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < zones.size(); ++i) {
    const ZoneSpec& z = zones[i];
    if (z.name.empty()) {
      return Status::error(ErrorCode::kInvalidArgument,
                           "zone " + std::to_string(i) + " has an empty name");
    }
    if (!index.emplace(z.name, i).second) {
      return Status::error(ErrorCode::kInvalidArgument,
                           "duplicate zone name '" + z.name + "'");
    }
  }
  int total_sites = 0;
  for (const ZoneSpec& z : zones) {
    if (!z.parent.empty() && !index.contains(z.parent)) {
      return Status::error(ErrorCode::kInvalidArgument,
                           "zone '" + z.name + "' has unknown parent '" +
                               z.parent + "'");
    }
    if (z.parent == z.name) {
      return Status::error(ErrorCode::kInvalidArgument,
                           "zone '" + z.name + "' is its own parent");
    }
    if (z.sites < 0) {
      return Status::error(ErrorCode::kInvalidArgument,
                           "zone '" + z.name + "' has negative site count");
    }
    total_sites += z.sites;
    if (!(z.speed > 0.0) || !std::isfinite(z.speed)) {  // rejects NaN too
      return Status::error(ErrorCode::kInvalidArgument,
                           "zone '" + z.name +
                               "' speed factor must be positive, got " +
                               std::to_string(z.speed));
    }
    if (Status s = check_loss(z.name, "local", z.local.loss); !s.is_ok()) {
      return s;
    }
    if (Status s = check_loss(z.name, "uplink", z.up.loss); !s.is_ok()) {
      return s;
    }
  }
  if (total_sites == 0) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "topology hosts zero sites");
  }
  // Cycle check: every parent chain must reach a root within |zones| hops.
  for (const ZoneSpec& z : zones) {
    std::size_t hops = 0;
    const ZoneSpec* cur = &z;
    while (!cur->parent.empty()) {
      if (++hops > zones.size()) {
        return Status::error(ErrorCode::kInvalidArgument,
                             "cyclic zone route through '" + z.name + "'");
      }
      cur = &zones[index.at(cur->parent)];
    }
  }
  return Status::ok();
}

int ZoneTable::zone_of_site(int site_index) const {
  for (std::size_t i = 0; i < zones.size(); ++i) {
    if (site_index < zones[i].first_site + zones[i].sites) {
      return static_cast<int>(i);
    }
  }
  return static_cast<int>(zones.size()) - 1;
}

Result<ZoneTable> build_zone_table(const std::vector<ZoneSpec>& zones) {
  if (Status s = validate_zones(zones); !s.is_ok()) return s;

  std::unordered_map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < zones.size(); ++i) index[zones[i].name] = i;

  // Path from a zone to the root, as spec indices (self first).
  auto path_to_root = [&](std::size_t zi) {
    std::vector<std::size_t> path;
    for (const ZoneSpec* cur = &zones[zi];; cur = &zones[index.at(cur->parent)]) {
      path.push_back(static_cast<std::size_t>(cur - zones.data()));
      if (cur->parent.empty()) break;
    }
    return path;
  };

  ZoneTable table;
  std::vector<std::size_t> spec_of_host;  // hosting zone -> spec index
  for (std::size_t i = 0; i < zones.size(); ++i) {
    if (zones[i].sites == 0) continue;
    ZoneTable::ZoneInfo info;
    info.name = zones[i].name;
    info.first_site = table.total_sites;
    info.sites = zones[i].sites;
    info.speed = zones[i].speed;
    table.total_sites += zones[i].sites;
    table.zones.push_back(std::move(info));
    spec_of_host.push_back(i);
  }

  const std::size_t n = table.zones.size();
  table.matrix.resize(n * n);
  for (std::size_t a = 0; a < n; ++a) {
    std::vector<std::size_t> pa = path_to_root(spec_of_host[a]);
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) {
        table.matrix[a * n + b] = zones[spec_of_host[a]].local;
        continue;
      }
      std::vector<std::size_t> pb = path_to_root(spec_of_host[b]);
      // Strip the common tail (shared ancestors); what remains is the
      // uplink chain each side climbs to the LCA.
      while (pa.size() > 1 && pb.size() > 1 && pa.back() == pb.back() &&
             pa[pa.size() - 2] == pb[pb.size() - 2]) {
        pa.pop_back();
        pb.pop_back();
      }
      bool same_root = pa.back() == pb.back();
      net::LinkModel m;
      double pass = 1.0;
      auto climb = [&](const std::vector<std::size_t>& path) {
        // Cross every uplink below the LCA (all but the path's last entry
        // when the sides share it).
        std::size_t stop = same_root ? path.size() - 1 : path.size();
        for (std::size_t i = 0; i < stop; ++i) {
          const net::LinkModel& up = zones[path[i]].up;
          m.latency += up.latency;
          m.per_byte = std::max(m.per_byte, up.per_byte);
          m.jitter += up.jitter;
          pass *= 1.0 - up.loss;
          m.cut = m.cut || up.cut;
        }
      };
      climb(pa);
      climb(pb);
      m.loss = 1.0 - pass;
      table.matrix[a * n + b] = m;
    }
  }
  return table;
}

std::vector<ZoneSpec> make_rack_topology(int racks, int sites_per_rack,
                                         net::LinkModel intra,
                                         net::LinkModel up) {
  std::vector<ZoneSpec> zones;
  ZoneSpec core;
  core.name = "core";
  zones.push_back(core);
  for (int r = 0; r < racks; ++r) {
    ZoneSpec rack;
    rack.name = "rack" + std::to_string(r);
    rack.parent = "core";
    rack.sites = sites_per_rack;
    rack.local = intra;
    rack.up = up;
    zones.push_back(rack);
  }
  return zones;
}

}  // namespace sdvm::sim
