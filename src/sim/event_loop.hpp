// Discrete-event loop with a virtual clock. Single-threaded: every event
// handler runs to completion before time advances to the next event. This
// is what lets a simulated cluster run faithfully on any host.
//
// The pending set is a calendar queue (R. Brown, CACM 1988; the same
// structure SimGrid uses for its event core): O(1) amortized enqueue and
// dequeue regardless of queue size, which is what keeps 1000-site
// memberships — hundreds of thousands of concurrently armed heartbeat,
// gossip and delivery events — simulating at tens of millions of events
// per second. Ordering is strict (at, seq): two runs that schedule the
// same events in the same order execute them identically, the property
// every determinism/golden-trace test rests on.
//
// Exploration hook: events carry an EventTag (internal timer vs message
// delivery, plus the acted-on site). When a chooser is installed, the
// loop exposes the set of deliveries that could plausibly run next (any
// delivery within `window` of the earliest pending event, modeling
// variable network delay) and lets the chooser pick — the systematic
// interleaving exploration of sdvm-chaos --explore is built on this.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/clock.hpp"
#include "common/types.hpp"

namespace sdvm::sim {

/// Classification of a pending event, used only by exploration mode.
struct EventTag {
  enum class Kind : std::uint8_t {
    kInternal = 0,  // site timer / pump: fires in timestamp order
    kDelivery,      // network message delivery: reorderable within window
  };
  Kind kind = Kind::kInternal;
  std::uint32_t actor = 0;  // site slot the event acts on (dest for deliveries)
};

/// Exploration hook: picks which of the currently enabled events runs
/// next. `enabled` is sorted by (at, seq) and has at least two entries.
class EventChooser {
 public:
  struct Choice {
    Nanos at = 0;
    std::uint64_t seq = 0;
    EventTag tag;
  };
  virtual ~EventChooser() = default;
  virtual std::size_t choose(const std::vector<Choice>& enabled) = 0;
};

class EventLoop {
 public:
  EventLoop();

  void schedule(Nanos delay, std::function<void()> fn) {
    schedule_tagged(delay, EventTag{}, std::move(fn));
  }
  void schedule_tagged(Nanos delay, EventTag tag, std::function<void()> fn);

  /// Runs one event; returns false when the queue is empty.
  bool step();

  /// Runs until `pred()` is true or virtual `deadline` passes (deadline <0
  /// = unbounded). Returns whether the predicate was met.
  bool run_until(const std::function<bool()>& pred, Nanos deadline = -1);

  /// Advances exactly `duration` of virtual time, draining due events.
  void run_for(Nanos duration);

  [[nodiscard]] Nanos now() const { return clock_.now(); }
  [[nodiscard]] VirtualClock& clock() { return clock_; }
  [[nodiscard]] std::size_t pending() const { return size_; }
  /// Events executed since construction (the simscale bench's numerator).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Installs (or clears, with nullptr) the exploration chooser. Deliveries
  /// within `window` of the earliest pending event become a choice point
  /// when more than one event is enabled. The chooser is only consulted on
  /// genuine branches; pure timer steps run in timestamp order.
  void set_chooser(EventChooser* chooser, Nanos window) {
    chooser_ = chooser;
    window_ = window;
  }

 private:
  struct Event {
    Nanos at = 0;
    std::uint64_t seq = 0;
    EventTag tag;
    std::function<void()> fn;
  };

  /// Position of an event inside the bucket array.
  struct Ref {
    std::size_t bucket = 0;
    std::size_t index = 0;
  };

  Ref find_min();
  /// Earliest pending event's timestamp (queue must be non-empty).
  Nanos peek_min_at();
  Event pop_explored();
  Event pop_at(Ref ref);
  void insert(Event e);
  void resize(std::size_t new_buckets);
  [[nodiscard]] std::size_t bucket_of(Nanos at) const {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(at) / width_) &
           (buckets_.size() - 1);
  }

  VirtualClock clock_;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;

  // Calendar queue: power-of-two bucket count, each bucket an unsorted
  // vector scanned for the (at, seq) minimum when visited.
  std::vector<std::vector<Event>> buckets_;
  std::uint64_t width_;        // virtual-time width of one bucket
  std::size_t size_ = 0;       // events pending across all buckets
  std::size_t cursor_ = 0;     // bucket the year scan resumes from
  Nanos cursor_top_ = 0;       // end of cursor_'s current-year window

  EventChooser* chooser_ = nullptr;
  Nanos window_ = 0;
};

}  // namespace sdvm::sim
