// Discrete-event loop with a virtual clock. Single-threaded: every event
// handler runs to completion before time advances to the next event. This
// is what lets an 8-site "Pentium-IV cluster" run faithfully on any host.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>

#include "common/clock.hpp"
#include "common/types.hpp"

namespace sdvm::sim {

class EventLoop {
 public:
  void schedule(Nanos delay, std::function<void()> fn) {
    events_.push(Event{clock_.now() + std::max<Nanos>(delay, 0), ++seq_,
                       std::move(fn)});
  }

  /// Runs one event; returns false when the queue is empty.
  bool step() {
    if (events_.empty()) return false;
    Event e = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    clock_.advance_to(e.at);
    if (e.fn) e.fn();
    return true;
  }

  /// Runs until `pred()` is true or virtual `deadline` passes (deadline <0
  /// = unbounded). Returns whether the predicate was met.
  bool run_until(const std::function<bool()>& pred, Nanos deadline = -1) {
    while (!pred()) {
      if (events_.empty()) return false;
      if (deadline >= 0 && events_.top().at > deadline) {
        clock_.advance_to(deadline);
        return false;
      }
      step();
    }
    return true;
  }

  /// Advances exactly `duration` of virtual time, draining due events.
  void run_for(Nanos duration) {
    Nanos deadline = clock_.now() + duration;
    while (!events_.empty() && events_.top().at <= deadline) step();
    clock_.advance_to(deadline);
  }

  [[nodiscard]] Nanos now() const { return clock_.now(); }
  [[nodiscard]] VirtualClock& clock() { return clock_; }
  [[nodiscard]] std::size_t pending() const { return events_.size(); }

 private:
  struct Event {
    Nanos at;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return std::tie(at, seq) > std::tie(o.at, o.seq);
    }
  };
  VirtualClock clock_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t seq_ = 0;
};

}  // namespace sdvm::sim
