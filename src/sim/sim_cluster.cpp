#include "sim/sim_cluster.hpp"

#include <cmath>

namespace sdvm::sim {

/// Driver wiring a Site into the event loop: wakeups and work notifications
/// become events; execution is serialized by Site::pump itself.
class SimCluster::SimDriver final : public Driver {
 public:
  SimDriver(EventLoop& loop, std::uint32_t actor)
      : loop_(loop), actor_(actor) {}

  void bind(Site* site, bool* killed) {
    site_ = site;
    killed_ = killed;
  }

  /// The slot restarted: this driver's site is a dead incarnation. Stop
  /// pumping it — the killed flag is about to be reused by the new site.
  void retire() {
    site_ = nullptr;
    killed_ = nullptr;
  }

  void request_wakeup(Nanos delay) override { schedule_pump(delay); }
  void notify_work() override { schedule_pump(0); }
  [[nodiscard]] bool simulated() const override { return true; }

 private:
  void schedule_pump(Nanos delay) {
    // Coalesce: at most one outstanding zero-delay pump; timed wakeups are
    // cheap enough to just schedule.
    if (delay == 0) {
      if (pump_pending_) return;
      pump_pending_ = true;
    }
    loop_.schedule_tagged(delay,
                          EventTag{EventTag::Kind::kInternal, actor_},
                          [this, timed = delay != 0] {
                            if (!timed) pump_pending_ = false;
                            if (site_ != nullptr && killed_ != nullptr &&
                                !*killed_) {
                              (void)site_->pump();
                            }
                          });
  }

  EventLoop& loop_;
  std::uint32_t actor_;
  Site* site_ = nullptr;
  bool* killed_ = nullptr;
  bool pump_pending_ = false;
};

Status SimCluster::Options::validate() const {
  if (!(link.loss >= 0.0) || link.loss >= 1.0) {  // !(>=0) also catches NaN
    return Status::error(ErrorCode::kInvalidArgument,
                         "link loss must be in [0, 1), got " +
                             std::to_string(link.loss));
  }
  if (!zones.empty()) {
    if (Status s = validate_zones(zones); !s.is_ok()) return s;
  }
  return Status::ok();
}

SimCluster::SimCluster(Options options)
    : options_(std::move(options)), network_(options_.seed) {
  if (!options_.validate().is_ok()) {
    SDVM_ERROR("sim") << "clamping invalid link loss "
                      << options_.link.loss << " into [0, 1)";
    if (!(options_.link.loss >= 0.0)) {
      options_.link.loss = 0.0;
    } else {
      options_.link.loss = std::nextafter(1.0, 0.0);
    }
  }
  network_.set_default_link(options_.link);
  network_.set_delivery_scheduler([this](Nanos delay, const std::string& to,
                                         std::function<void()> fn) {
    EventTag tag{EventTag::Kind::kDelivery, 0};
    if (auto it = slot_of_addr_.find(to); it != slot_of_addr_.end()) {
      tag.actor = it->second;
    }
    loop_.schedule_tagged(delay, tag, std::move(fn));
  });
}

SimCluster::~SimCluster() = default;

// The Site owns a Transport; wrap the endpoint in a thin forwarder so the
// endpoint's lifetime stays with the entry (kill() needs its address).
namespace {
struct Forwarder final : net::Transport {
  net::InProcEndpoint* ep;
  explicit Forwarder(net::InProcEndpoint* e) : ep(e) {}
  std::string local_address() const override { return ep->local_address(); }
  Status send(const std::string& to, std::vector<std::byte> b) override {
    return ep->send(to, std::move(b));
  }
  void close() override {}
};
}  // namespace

void SimCluster::wire_site(Entry* e, std::size_t slot) {
  e->driver =
      std::make_unique<SimDriver>(loop_, static_cast<std::uint32_t>(slot));
  e->site = std::make_unique<Site>(e->config, loop_.clock(), *e->driver);
  e->driver->bind(e->site.get(), &e->killed);
  e->endpoint = network_.attach(
      [site = e->site.get()](std::vector<std::byte> bytes) {
        site->on_network_data(std::move(bytes));
      });
  e->site->attach_transport(std::make_unique<Forwarder>(e->endpoint.get()));
  slot_of_addr_[e->endpoint->local_address()] =
      static_cast<std::uint32_t>(slot);
  if (e->zone < 0) e->zone = pending_zone_;
  if (e->zone >= 0) {
    network_.set_node_zone(e->endpoint->local_address(), e->zone);
  }
  if (e->store != nullptr) e->site->attach_state_store(e->store);
}

Site& SimCluster::add_site(SiteConfig config, int contact_index) {
  auto entry = std::make_unique<Entry>();
  Entry* e = entry.get();
  e->config = std::move(config);
  if (options_.durable_state && e->config.state_dir.empty()) {
    auto mem = std::make_shared<MemStateStore>();
    const auto& f = options_.disk_faults;
    if (f.torn_write > 0 || f.bit_flip > 0 || f.drop_write > 0) {
      // Per-slot seed so fault schedules stay deterministic under churn.
      FaultyStateStore::Options per_slot = f;
      per_slot.seed = f.seed + entries_.size() * 0x9E3779B9u + 1;
      e->faulty = std::make_shared<FaultyStateStore>(mem, per_slot);
      e->store = e->faulty;
    } else {
      e->store = std::move(mem);
    }
  }
  wire_site(e, entries_.size());

  entries_.push_back(std::move(entry));

  if (entries_.size() == 1) {
    e->site->bootstrap();
  } else {
    std::size_t idx = std::min<std::size_t>(
        static_cast<std::size_t>(std::max(contact_index, 0)),
        entries_.size() - 2);
    std::string contact = entries_[idx]->endpoint->local_address();
    e->site->join(contact);
    bool ok = loop_.run_until([e] { return e->site->joined(); },
                              loop_.now() + 10 * kNanosPerSecond);
    if (!ok) {
      SDVM_ERROR("sim") << "site failed to join within virtual 10s";
    }
  }
  install_memory_oracle(*e->site);
  install_file_oracle(*e->site);
  return *e->site;
}

void SimCluster::add_sites(int n, double speed, const SiteConfig& base) {
  for (int i = 0; i < n; ++i) {
    SiteConfig cfg = base;
    cfg.name = "site" + std::to_string(entries_.size() + 1);
    cfg.speed = speed;
    add_site(cfg);
  }
}

Status SimCluster::add_topology_sites(const SiteConfig& base) {
  auto table = build_zone_table(options_.zones);
  if (!table.is_ok()) return table.status();
  const ZoneTable& zt = table.value();

  const int n = static_cast<int>(zt.zones.size());
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      network_.set_zone_link(a, b, zt.link(a, b));
    }
  }
  for (int z = 0; z < n; ++z) {
    const ZoneTable::ZoneInfo& info = zt.zones[static_cast<std::size_t>(z)];
    pending_zone_ = z;
    for (int i = 0; i < info.sites; ++i) {
      SiteConfig cfg = base;
      cfg.name = info.name + "-site" + std::to_string(entries_.size() + 1);
      cfg.speed = base.speed * info.speed;
      add_site(cfg);
    }
  }
  pending_zone_ = -1;
  return Status::ok();
}

void SimCluster::enable_event_hash() {
  network_.set_trace_hook([this](const std::string& from, const std::string& to,
                                 std::size_t size, bool delivered) {
    constexpr std::uint64_t kPrime = 1099511628211ULL;
    auto mix = [&](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        event_hash_ ^= (v >> (i * 8)) & 0xFF;
        event_hash_ *= kPrime;
      }
    };
    auto mix_str = [&](const std::string& s) {
      for (char c : s) {
        event_hash_ ^= static_cast<std::uint8_t>(c);
        event_hash_ *= kPrime;
      }
      event_hash_ ^= 0xFF;  // terminator: "ab","c" != "a","bc"
      event_hash_ *= kPrime;
    };
    mix(static_cast<std::uint64_t>(loop_.now()));
    mix_str(from);
    mix_str(to);
    mix(size);
    mix(delivered ? 1 : 0);
  });
}

void SimCluster::install_memory_oracle(Site& site) {
  Site* requester = &site;
  site.memory().set_sim_fetch_hook(
      [this, requester](GlobalAddress addr,
                        MemObject* out) -> Result<Nanos> {
        // Route via the requester's shard view: the lease holder mediates.
        SiteId holder_id = requester->memory().shard_route(addr);
        Site* holder = site_by_id(holder_id);
        SiteId owner_id = holder != nullptr
                              ? holder->memory().directory_owner(addr)
                              : kInvalidSite;
        Site* owner =
            owner_id != kInvalidSite ? site_by_id(owner_id) : nullptr;
        if (owner == nullptr || owner->memory().local_object(addr) == nullptr) {
          // The holder's entry is missing or stale (mid-handoff, mid-
          // rebuild, or the owner moved): fall back to physical ground
          // truth, as the message protocol's re-registration would.
          owner = nullptr;
          for (auto& e : entries_) {
            if (e->site->memory().owns(addr)) {
              owner = e->site.get();
              break;
            }
          }
          if (owner == nullptr) {
            return Status::error(ErrorCode::kNotFound, "no such object");
          }
        }
        MemObject* obj = owner->memory().local_object(addr);
        *out = *obj;
        Nanos bytes = static_cast<Nanos>(obj->words.size() * 8 + 64) *
                      options_.link.per_byte;
        owner->memory().evict_object(addr);
        owner->memory().migrations_out++;
        if (holder != nullptr) {
          holder->memory().set_directory_owner(addr, requester->id());
        }

        // Stall model: request to the shard holder, forward to the owner,
        // object back — three one-way hops plus serialization.
        Nanos hop = options_.link.latency;
        return 3 * hop + bytes;
      });
}

void SimCluster::install_file_oracle(Site& site) {
  site.io().set_sim_file_hook(
      [this](SiteId owner, const std::string& path, bool write,
             std::string data) -> IoManager::SimFileResult {
        IoManager::SimFileResult r;
        Site* target = site_by_id(owner);
        if (target == nullptr) {
          r.status = Status::error(ErrorCode::kUnavailable,
                                   "file owner site unreachable");
          return r;
        }
        Nanos hop = options_.link.latency;
        if (write) {
          std::size_t n = data.size();
          target->io().vfs_put(path, std::move(data));
          r.stall = 2 * hop + static_cast<Nanos>(n) * options_.link.per_byte;
          return r;
        }
        auto got = target->io().vfs_get(path);
        if (!got.is_ok()) {
          r.status = got.status();
          r.stall = 2 * hop;
          return r;
        }
        r.data = std::move(got).value();
        r.stall =
            2 * hop + static_cast<Nanos>(r.data.size()) * options_.link.per_byte;
        return r;
      });
}

Site* SimCluster::site_by_id(SiteId id) {
  for (auto& e : entries_) {
    if (e->site->id() == id) return e->site.get();
  }
  return nullptr;
}

Result<ProgramId> SimCluster::start_program(const ProgramSpec& spec,
                                            std::size_t home_index) {
  return entries_.at(home_index)->site->start_program(spec);
}

Result<std::int64_t> SimCluster::run_program(ProgramId pid, Nanos deadline) {
  // Any live site learning of the termination settles the wait — the home
  // site itself may die and be replaced by its checkpoint backup.
  auto find_verdict = [this, pid]() -> std::optional<std::int64_t> {
    for (auto& e : entries_) {
      if (e->killed || e->site->signed_off()) continue;
      if (e->site->programs().is_terminated(pid)) {
        return e->site->programs().exit_code(pid).value_or(0);
      }
    }
    return std::nullopt;
  };
  bool ok =
      loop_.run_until([&] { return find_verdict().has_value(); },
                      deadline < 0 ? -1 : loop_.now() + deadline);
  if (!ok) {
    return Status::error(ErrorCode::kUnavailable,
                         "program did not terminate in time");
  }
  return *find_verdict();
}

Result<SiteStatus> SimCluster::status(std::size_t index) {
  if (index >= entries_.size()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "no site at index " + std::to_string(index));
  }
  Entry* e = entries_[index].get();
  if (e->killed) {
    return Status::error(ErrorCode::kUnavailable, "site was killed");
  }
  return e->site->introspect();
}

Result<ClusterStatus> SimCluster::cluster_status(std::size_t via_index,
                                                 Nanos timeout) {
  if (via_index >= entries_.size()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "no site at index " + std::to_string(via_index));
  }
  Entry* e = entries_[via_index].get();
  if (e->killed) {
    return Status::error(ErrorCode::kUnavailable, "site was killed");
  }

  std::optional<ClusterStatus> result;
  {
    std::lock_guard lk(e->site->lock());
    e->site->site_manager().query_cluster_status(
        [&result](ClusterStatus cs) { result = std::move(cs); }, timeout);
  }
  // The query's own timeout timer guarantees completion within `timeout`
  // virtual time; the margin lets that final timer event fire.
  loop_.run_until([&] { return result.has_value(); },
                  loop_.now() + timeout + kNanosPerSecond);
  if (!result.has_value()) {
    return Status::error(ErrorCode::kUnavailable,
                         "cluster status query did not complete");
  }
  return std::move(*result);
}

Status SimCluster::install_trace_hook(std::size_t index, FrameTraceHook hook) {
  if (index >= entries_.size()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "no site at index " + std::to_string(index));
  }
  entries_[index]->site->set_frame_trace(std::move(hook));
  return Status::ok();
}

Result<SiteId> SimCluster::sign_off(std::size_t index) {
  auto result = entries_.at(index)->site->sign_off();
  // Let the relocation and notices drain.
  loop_.run_for(options_.link.latency * 10 + kNanosPerSecond / 100);
  return result;
}

void SimCluster::kill(std::size_t index) {
  Entry* e = entries_.at(index).get();
  e->killed = true;
  network_.kill(e->endpoint->local_address());
}

Site& SimCluster::restart(std::size_t index) {
  Entry* e = entries_.at(index).get();
  if (!e->killed) kill(index);

  // Retire (don't destroy) the dead incarnation: queued event-loop
  // callbacks and in-flight deliveries still point into it.
  e->driver->retire();
  retired_.push_back(Retired{std::move(e->driver), std::move(e->endpoint),
                             std::move(e->site)});

  e->killed = false;
  wire_site(e, static_cast<std::size_t>(index));

  // Join through any live member — like a real restarted daemon redialing
  // its peers. With nobody left, bootstrap a fresh cluster; recovery then
  // rests entirely on the state stores.
  Entry* contact = nullptr;
  for (auto& other : entries_) {
    if (other.get() == e || other->killed) continue;
    if (other->site->signed_off() || !other->site->joined()) continue;
    contact = other.get();
    break;
  }
  if (contact == nullptr) {
    e->site->bootstrap();
  } else {
    e->site->join(contact->endpoint->local_address());
    bool ok = loop_.run_until([e] { return e->site->joined(); },
                              loop_.now() + 10 * kNanosPerSecond);
    if (!ok) {
      SDVM_ERROR("sim") << "restarted site failed to join within virtual 10s";
    }
  }
  install_memory_oracle(*e->site);
  install_file_oracle(*e->site);
  return *e->site;
}

std::uint64_t SimCluster::disk_faults_injected() const {
  std::uint64_t total = 0;
  for (const auto& e : entries_) {
    if (e->faulty != nullptr) total += e->faulty->faults_injected();
  }
  return total;
}

std::vector<std::string> SimCluster::outputs(std::size_t frontend_index,
                                             ProgramId pid) {
  return entries_.at(frontend_index)->site->io().outputs(pid);
}

}  // namespace sdvm::sim
