#include "sim/event_loop.hpp"

#include <algorithm>
#include <limits>

namespace sdvm::sim {

namespace {

// Bucket-count bounds. The floor keeps modulo math cheap on tiny queues;
// the ceiling bounds resize cost for pathological event counts.
constexpr std::size_t kMinBuckets = 16;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;

constexpr std::uint64_t kMinWidth = 64;                      // 64 ns
constexpr std::uint64_t kMaxWidth = std::uint64_t{1} << 40;  // ~18 min

bool before(Nanos at_a, std::uint64_t seq_a, Nanos at_b, std::uint64_t seq_b) {
  return at_a != at_b ? at_a < at_b : seq_a < seq_b;
}

}  // namespace

EventLoop::EventLoop() : buckets_(kMinBuckets), width_(1 << 13) {
  cursor_top_ = static_cast<Nanos>(width_);
}

void EventLoop::schedule_tagged(Nanos delay, EventTag tag,
                                std::function<void()> fn) {
  Event e;
  e.at = clock_.now() + std::max<Nanos>(delay, 0);
  e.seq = ++seq_;
  e.tag = tag;
  e.fn = std::move(fn);
  insert(std::move(e));
}

void EventLoop::insert(Event e) {
  if (size_ + 1 > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
    resize(buckets_.size() * 2);
  }
  // Inserts may land behind the year cursor (an event due sooner than the
  // cursor's current window — e.g. a zero-delay pump scheduled right after
  // the scan advanced past `now`'s bucket). Rewind so it is not orphaned
  // for a whole calendar year.
  if (e.at < cursor_top_ - static_cast<Nanos>(width_)) {
    cursor_ = bucket_of(e.at);
    cursor_top_ = static_cast<Nanos>(
        (static_cast<std::uint64_t>(e.at) / width_ + 1) * width_);
  }
  buckets_[bucket_of(e.at)].push_back(std::move(e));
  ++size_;
}

void EventLoop::resize(std::size_t new_buckets) {
  std::vector<Event> all;
  all.reserve(size_);
  for (auto& b : buckets_) {
    for (auto& e : b) all.push_back(std::move(e));
    b.clear();
  }

  // Re-estimate the bucket width from the live population: the average
  // inter-event gap makes a visited bucket hold O(1) current-year events.
  Nanos lo = clock_.now();
  if (all.size() >= 2) {
    lo = std::numeric_limits<Nanos>::max();
    Nanos hi = std::numeric_limits<Nanos>::min();
    for (const Event& e : all) {
      lo = std::min(lo, e.at);
      hi = std::max(hi, e.at);
    }
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo);
    width_ = std::clamp(std::max<std::uint64_t>(span / all.size(), 1),
                        kMinWidth, kMaxWidth);
  } else if (!all.empty()) {
    lo = all.front().at;
  }

  buckets_.assign(new_buckets, {});
  for (auto& e : all) buckets_[bucket_of(e.at)].push_back(std::move(e));

  cursor_ = bucket_of(lo);
  cursor_top_ = static_cast<Nanos>(
      (static_cast<std::uint64_t>(lo) / width_ + 1) * width_);
}

// Locates the (at, seq)-minimum event, advancing the year cursor
// persistently. Non-destructive, so peeking then popping costs one scan.
// Pre: size_ > 0.
EventLoop::Ref EventLoop::find_min() {
  for (std::size_t n = 0; n < buckets_.size(); ++n) {
    std::vector<Event>& b = buckets_[cursor_];
    std::size_t best = b.size();
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (b[i].at >= cursor_top_) continue;  // parked for a later year
      if (best == b.size() ||
          before(b[i].at, b[i].seq, b[best].at, b[best].seq)) {
        best = i;
      }
    }
    if (best != b.size()) return Ref{cursor_, best};
    cursor_ = (cursor_ + 1) & (buckets_.size() - 1);
    cursor_top_ += static_cast<Nanos>(width_);
  }

  // A whole year came up empty (sparse far-future events): jump the cursor
  // straight to the global minimum.
  Ref min_ref{0, 0};
  Nanos min_at = std::numeric_limits<Nanos>::max();
  std::uint64_t min_seq = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t bi = 0; bi < buckets_.size(); ++bi) {
    const std::vector<Event>& b = buckets_[bi];
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (before(b[i].at, b[i].seq, min_at, min_seq)) {
        min_at = b[i].at;
        min_seq = b[i].seq;
        min_ref = Ref{bi, i};
      }
    }
  }
  cursor_ = bucket_of(min_at);
  cursor_top_ = static_cast<Nanos>(
      (static_cast<std::uint64_t>(min_at) / width_ + 1) * width_);
  return min_ref;
}

Nanos EventLoop::peek_min_at() {
  Ref r = find_min();
  return buckets_[r.bucket][r.index].at;
}

EventLoop::Event EventLoop::pop_at(Ref ref) {
  std::vector<Event>& b = buckets_[ref.bucket];
  Event e = std::move(b[ref.index]);
  b[ref.index] = std::move(b.back());
  b.pop_back();
  --size_;
  if (size_ < buckets_.size() / 4 && buckets_.size() > kMinBuckets) {
    resize(buckets_.size() / 2);
  }
  return e;
}

EventLoop::Event EventLoop::pop_explored() {
  // Exploration runs on small clusters: a full scan of the pending set is
  // affordable and keeps the enabled-set logic independent of bucketing.
  Nanos t_min = std::numeric_limits<Nanos>::max();
  for (const auto& b : buckets_) {
    for (const Event& e : b) t_min = std::min(t_min, e.at);
  }
  const Nanos horizon = t_min + window_;

  // Enabled: every delivery within the window (its arrival may be delayed
  // past competitors), plus the earliest internal timer if due within the
  // window (timers cannot be reordered among themselves).
  std::vector<Ref> refs;
  std::vector<EventChooser::Choice> choices;
  Ref first_internal{0, 0};
  bool have_internal = false;
  Nanos internal_at = 0;
  std::uint64_t internal_seq = 0;
  for (std::size_t bi = 0; bi < buckets_.size(); ++bi) {
    const std::vector<Event>& b = buckets_[bi];
    for (std::size_t i = 0; i < b.size(); ++i) {
      const Event& e = b[i];
      if (e.tag.kind == EventTag::Kind::kDelivery) {
        if (e.at <= horizon) {
          refs.push_back(Ref{bi, i});
          choices.push_back(EventChooser::Choice{e.at, e.seq, e.tag});
        }
      } else if (!have_internal ||
                 before(e.at, e.seq, internal_at, internal_seq)) {
        have_internal = true;
        internal_at = e.at;
        internal_seq = e.seq;
        first_internal = Ref{bi, i};
      }
    }
  }
  if (have_internal && internal_at <= horizon) {
    refs.push_back(first_internal);
    choices.push_back(EventChooser::Choice{
        internal_at, internal_seq,
        buckets_[first_internal.bucket][first_internal.index].tag});
  }

  if (choices.size() <= 1) return pop_at(find_min());

  // Deterministic presentation order: (at, seq).
  std::vector<std::size_t> order(choices.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return before(choices[a].at, choices[a].seq, choices[b].at,
                  choices[b].seq);
  });
  std::vector<EventChooser::Choice> sorted;
  sorted.reserve(order.size());
  for (std::size_t i : order) sorted.push_back(choices[i]);

  std::size_t picked = chooser_->choose(sorted);
  if (picked >= sorted.size()) picked = 0;
  return pop_at(refs[order[picked]]);
}

bool EventLoop::step() {
  if (size_ == 0) return false;
  Event e = chooser_ != nullptr ? pop_explored() : pop_at(find_min());
  // An explored (delayed) delivery may carry a timestamp behind the clock.
  clock_.advance_to(std::max(clock_.now(), e.at));
  ++executed_;
  if (e.fn) e.fn();
  return true;
}

bool EventLoop::run_until(const std::function<bool()>& pred, Nanos deadline) {
  while (!pred()) {
    if (size_ == 0) return false;
    if (deadline >= 0 && peek_min_at() > deadline) {
      clock_.advance_to(deadline);
      return false;
    }
    step();
  }
  return true;
}

void EventLoop::run_for(Nanos duration) {
  Nanos deadline = clock_.now() + duration;
  while (size_ != 0 && peek_min_at() <= deadline) step();
  clock_.advance_to(deadline);
}

}  // namespace sdvm::sim
