// In-process message fabric. Endpoints are "inproc:<n>" strings. Supports:
//   * per-link latency/bandwidth model (delayed delivery via either a timer
//     thread in wall-clock mode or a caller-supplied scheduler in sim mode)
//   * loss probability, link cuts, partitions, site kill (fault injection)
//   * per-link traffic counters for the benches
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/transport.hpp"

namespace sdvm::net {

struct LinkModel {
  Nanos latency = 0;       // one-way propagation delay
  Nanos per_byte = 0;      // serialization cost per payload byte
  Nanos jitter = 0;        // uniform random extra delay in [0, jitter] —
                           // enough jitter REORDERS messages (the paper's
                           // UDP experience; our protocols must tolerate it)
  double loss = 0.0;       // drop probability in [0,1)
  bool cut = false;        // hard partition of this directed link
};

struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dropped = 0;
};

class InProcNetwork;

/// One endpoint on the fabric; implements Transport. Batched sends use
/// the base-class default (send_batch loops send, flush is a no-op) on
/// purpose: the fabric has no wire to coalesce for, and looping keeps
/// the loss RNG and the trace hook firing once per frame — the same
/// per-frame contract the batched TCP path guarantees.
class InProcEndpoint final : public Transport {
 public:
  InProcEndpoint(InProcNetwork* net, std::string address, Receiver receiver)
      : net_(net), address_(std::move(address)), receiver_(std::move(receiver)) {}

  [[nodiscard]] std::string local_address() const override { return address_; }
  Status send(const std::string& to, std::vector<std::byte> bytes) override;
  void close() override;

 private:
  friend class InProcNetwork;
  InProcNetwork* net_;
  std::string address_;
  Receiver receiver_;
};

/// Hook letting the simulator own delayed delivery: schedule(delay, to, fn)
/// must run fn after `delay` of *virtual* time. `to` is the destination
/// address, so the simulator can tag the delivery with the acted-on site
/// (exploration mode reorders deliveries per-destination).
using DeliveryScheduler =
    std::function<void(Nanos, const std::string&, std::function<void()>)>;

class InProcNetwork {
 public:
  /// seed drives the loss model deterministically.
  explicit InProcNetwork(std::uint64_t seed = 1);
  ~InProcNetwork();

  InProcNetwork(const InProcNetwork&) = delete;
  InProcNetwork& operator=(const InProcNetwork&) = delete;

  /// Creates an endpoint; the fabric owns nothing — callers keep the
  /// unique_ptr alive as long as they want to receive.
  [[nodiscard]] std::unique_ptr<InProcEndpoint> attach(Receiver receiver);

  /// Default model applied to links without an explicit override.
  void set_default_link(LinkModel model);
  void set_link(const std::string& from, const std::string& to,
                LinkModel model);

  /// Hierarchical zones (SimGrid-style): assign endpoints to zones and give
  /// zone pairs a link model. Resolution order per send: explicit per-pair
  /// link, then the (zone(from), zone(to)) model, then the default link.
  /// Zone ids are small dense integers; a node with no zone uses the
  /// default link unless a per-pair override exists.
  void set_node_zone(const std::string& address, int zone);
  void set_zone_link(int from_zone, int to_zone, LinkModel model);

  /// Kills an endpoint abruptly: all traffic to and from it vanishes.
  /// Models an uncontrolled site crash.
  void kill(const std::string& address);
  [[nodiscard]] bool is_killed(const std::string& address) const;

  /// Cuts every link between group A and group B (both directions).
  void partition(const std::vector<std::string>& a,
                 const std::vector<std::string>& b);
  void heal();

  /// Installs a virtual-time scheduler (sim mode). Without one, delayed
  /// messages go through an internal timer thread; zero-delay messages are
  /// always delivered inline on the sender's thread.
  void set_delivery_scheduler(DeliveryScheduler scheduler);

  /// Observes every send decision: (from, to, payload bytes, delivered).
  /// `delivered == false` means the fabric dropped the message (kill, cut,
  /// partition or loss). Called under the fabric lock — the hook must not
  /// call back into the network.
  using TraceHook = std::function<void(const std::string&, const std::string&,
                                       std::size_t, bool)>;
  void set_trace_hook(TraceHook hook);

  [[nodiscard]] LinkStats total_stats() const;
  [[nodiscard]] LinkStats stats(const std::string& from,
                                const std::string& to) const;
  void reset_stats();

 private:
  friend class InProcEndpoint;

  Status send_from(const std::string& from, const std::string& to,
                   std::vector<std::byte> bytes);
  [[nodiscard]] bool is_partitioned_locked(const std::string& from,
                                           const std::string& to) const;
  void detach(const std::string& address);
  void deliver(const std::string& to, std::vector<std::byte> bytes);
  void timer_loop();

  mutable std::mutex mu_;
  std::unordered_map<std::string, InProcEndpoint*> endpoints_;
  std::unordered_set<std::string> killed_;
  std::map<std::pair<std::string, std::string>, LinkModel> links_;
  std::map<std::pair<std::string, std::string>, LinkStats> stats_;
  LinkModel default_link_;
  std::unordered_map<std::string, int> node_zone_;
  std::map<std::pair<int, int>, LinkModel> zone_links_;
  /// Each partition() call cuts group A from group B; membership is a set
  /// test so a 500×500 split costs O(1) per send, not a 250k-pair scan.
  struct PartitionCut {
    std::unordered_set<std::string> a;
    std::unordered_set<std::string> b;
  };
  std::vector<PartitionCut> partitioned_;
  DeliveryScheduler scheduler_;
  TraceHook trace_;
  Xoshiro256 rng_;
  std::uint64_t next_id_ = 1;

  // Wall-clock delayed delivery.
  struct Pending {
    Nanos due;
    std::uint64_t seq;
    std::string to;
    std::vector<std::byte> bytes;
    bool operator>(const Pending& o) const {
      return std::tie(due, seq) > std::tie(o.due, o.seq);
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> delayed_;
  std::uint64_t delayed_seq_ = 0;
  std::condition_variable timer_cv_;
  std::thread timer_thread_;
  bool stop_ = false;
};

}  // namespace sdvm::net
