// Transport abstraction (the network manager's lowest layer). The paper's
// network manager "works with physical (ip) addresses only" — a transport
// moves opaque frames between string-addressed endpoints. Three
// implementations exist:
//   * InProcNetwork  — message fabric inside one process, with a latency /
//     bandwidth / loss / partition model and fault injection (used by the
//     threads mode and, via a scheduler hook, by sim mode)
//   * TcpTransport   — real sockets, a single epoll event loop per daemon,
//     length-prefixed multi-frame batches on the wire (the paper's
//     deployment)
//   * FaultyTransport — seeded drop/delay/sever decorator over any of the
//     above (per frame, even inside a batch)
//
// The batched contract shared by all three:
//   * send() submits ONE frame; implementations may transparently coalesce
//     it with neighbours into a batch (flush on size threshold or
//     deadline), so delivery of a single frame can lag by the flush
//     deadline unless flush() is called.
//   * send_batch() submits a burst the caller already knows belongs
//     together; fault rules and delivery stay per-frame.
//   * the Receiver is invoked once PER FRAME, never per batch — batching
//     is invisible above the transport.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace sdvm::net {

/// One opaque datagram payload as the runtime sees it (no wire framing).
using Frame = std::vector<std::byte>;

/// Callback invoked with each received frame — exactly one call per frame,
/// including frames that traveled inside a multi-frame batch. May be called
/// from any thread; implementations must only enqueue.
using Receiver = std::function<void(std::vector<std::byte>)>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// The physical address other endpoints use to reach this one.
  [[nodiscard]] virtual std::string local_address() const = 0;

  /// Sends one frame. Delivery is best-effort and ordered per link for
  /// TCP; the in-proc fabric is ordered unless the fault model reorders.
  virtual Status send(const std::string& to,
                      std::vector<std::byte> bytes) = 0;

  /// Sends a burst of frames to one peer. Best-effort per frame: a frame
  /// that fails does not stop later frames; the first non-ok status is
  /// returned. The default implementation loops over send(); batching
  /// transports enqueue the whole burst under one lock and coalesce it
  /// into as few wire batches as the flush policy allows.
  virtual Status send_batch(const std::string& to, std::vector<Frame> frames) {
    Status first = Status::ok();
    for (auto& f : frames) {
      Status st = send(to, std::move(f));
      if (!st.is_ok() && first.is_ok()) first = st;
    }
    return first;
  }

  /// Asks a coalescing transport to ship everything parked for `to` now
  /// instead of waiting for the size/deadline flush. No-op by default
  /// (non-batching transports deliver eagerly).
  virtual void flush(const std::string& to) { (void)to; }

  /// Stops delivering and releases resources.
  virtual void close() = 0;
};

}  // namespace sdvm::net
