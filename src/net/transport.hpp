// Transport abstraction (the network manager's lowest layer). The paper's
// network manager "works with physical (ip) addresses only" — a transport
// moves opaque byte blobs between string-addressed endpoints. Three
// implementations exist:
//   * InProcNetwork  — message fabric inside one process, with a latency /
//     bandwidth / loss / partition model and fault injection (used by the
//     threads mode and, via a scheduler hook, by sim mode)
//   * TcpTransport   — real sockets, length-framed streams, listener thread
//     (the paper's deployment)
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace sdvm::net {

/// Callback invoked with each received datagram. May be called from any
/// thread; implementations must only enqueue.
using Receiver = std::function<void(std::vector<std::byte>)>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// The physical address other endpoints use to reach this one.
  [[nodiscard]] virtual std::string local_address() const = 0;

  /// Sends one datagram. Delivery is best-effort and ordered per link for
  /// TCP; the in-proc fabric is ordered unless the fault model reorders.
  virtual Status send(const std::string& to,
                      std::vector<std::byte> bytes) = 0;

  /// Stops delivering and releases resources.
  virtual void close() = 0;
};

}  // namespace sdvm::net
