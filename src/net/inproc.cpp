#include "net/inproc.hpp"

#include <algorithm>

#include "common/clock.hpp"
#include "common/log.hpp"

namespace sdvm::net {

Status InProcEndpoint::send(const std::string& to,
                            std::vector<std::byte> bytes) {
  if (net_ == nullptr) {
    return Status::error(ErrorCode::kFailedPrecondition, "endpoint closed");
  }
  return net_->send_from(address_, to, std::move(bytes));
}

void InProcEndpoint::close() {
  if (net_ != nullptr) {
    net_->detach(address_);
    net_ = nullptr;
  }
}

InProcNetwork::InProcNetwork(std::uint64_t seed) : rng_(seed) {}

InProcNetwork::~InProcNetwork() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
}

std::unique_ptr<InProcEndpoint> InProcNetwork::attach(Receiver receiver) {
  std::lock_guard lock(mu_);
  std::string addr = "inproc:" + std::to_string(next_id_++);
  auto ep = std::make_unique<InProcEndpoint>(this, addr, std::move(receiver));
  endpoints_[addr] = ep.get();
  return ep;
}

void InProcNetwork::detach(const std::string& address) {
  std::lock_guard lock(mu_);
  endpoints_.erase(address);
}

void InProcNetwork::set_default_link(LinkModel model) {
  std::lock_guard lock(mu_);
  default_link_ = model;
}

void InProcNetwork::set_link(const std::string& from, const std::string& to,
                             LinkModel model) {
  std::lock_guard lock(mu_);
  links_[{from, to}] = model;
}

void InProcNetwork::kill(const std::string& address) {
  std::lock_guard lock(mu_);
  killed_.insert(address);
}

bool InProcNetwork::is_killed(const std::string& address) const {
  std::lock_guard lock(mu_);
  return killed_.contains(address);
}

void InProcNetwork::partition(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  std::lock_guard lock(mu_);
  PartitionCut cut;
  cut.a.insert(a.begin(), a.end());
  cut.b.insert(b.begin(), b.end());
  partitioned_.push_back(std::move(cut));
}

bool InProcNetwork::is_partitioned_locked(const std::string& from,
                                          const std::string& to) const {
  for (const PartitionCut& cut : partitioned_) {
    if ((cut.a.contains(from) && cut.b.contains(to)) ||
        (cut.b.contains(from) && cut.a.contains(to))) {
      return true;
    }
  }
  return false;
}

void InProcNetwork::heal() {
  std::lock_guard lock(mu_);
  partitioned_.clear();
  killed_.clear();
}

void InProcNetwork::set_node_zone(const std::string& address, int zone) {
  std::lock_guard lock(mu_);
  node_zone_[address] = zone;
}

void InProcNetwork::set_zone_link(int from_zone, int to_zone, LinkModel model) {
  std::lock_guard lock(mu_);
  zone_links_[{from_zone, to_zone}] = model;
}

void InProcNetwork::set_delivery_scheduler(DeliveryScheduler scheduler) {
  std::lock_guard lock(mu_);
  scheduler_ = std::move(scheduler);
}

void InProcNetwork::set_trace_hook(TraceHook hook) {
  std::lock_guard lock(mu_);
  trace_ = std::move(hook);
}

LinkStats InProcNetwork::total_stats() const {
  std::lock_guard lock(mu_);
  LinkStats total;
  for (const auto& [link, s] : stats_) {
    total.messages += s.messages;
    total.bytes += s.bytes;
    total.dropped += s.dropped;
  }
  return total;
}

LinkStats InProcNetwork::stats(const std::string& from,
                               const std::string& to) const {
  std::lock_guard lock(mu_);
  auto it = stats_.find({from, to});
  return it == stats_.end() ? LinkStats{} : it->second;
}

void InProcNetwork::reset_stats() {
  std::lock_guard lock(mu_);
  stats_.clear();
}

Status InProcNetwork::send_from(const std::string& from, const std::string& to,
                                std::vector<std::byte> bytes) {
  std::function<void()> deliver_fn;
  Nanos delay = 0;
  DeliveryScheduler scheduler;
  {
    std::lock_guard lock(mu_);
    auto& st = stats_[{from, to}];
    auto note = [&](bool delivered) {
      if (trace_) trace_(from, to, bytes.size(), delivered);
    };
    if (killed_.contains(from) || killed_.contains(to)) {
      st.dropped++;
      note(false);
      // A dead site is a black hole, not an error the sender can see —
      // failure detection is the cluster manager's job.
      return Status::ok();
    }
    if (is_partitioned_locked(from, to)) {
      st.dropped++;
      note(false);
      return Status::ok();
    }
    if (!endpoints_.contains(to)) {
      st.dropped++;
      note(false);
      return Status::error(ErrorCode::kUnavailable, "no endpoint " + to);
    }

    LinkModel model = default_link_;
    if (auto it = links_.find({from, to}); it != links_.end()) {
      model = it->second;
    } else if (!zone_links_.empty()) {
      auto zf = node_zone_.find(from);
      auto zt = node_zone_.find(to);
      if (zf != node_zone_.end() && zt != node_zone_.end()) {
        if (auto zit = zone_links_.find({zf->second, zt->second});
            zit != zone_links_.end()) {
          model = zit->second;
        }
      }
    }
    if (model.cut) {
      st.dropped++;
      note(false);
      return Status::ok();
    }
    if (model.loss > 0 && rng_.uniform() < model.loss) {
      st.dropped++;
      note(false);
      return Status::ok();
    }

    st.messages++;
    st.bytes += bytes.size();
    note(true);
    delay = model.latency +
            model.per_byte * static_cast<Nanos>(bytes.size());
    if (model.jitter > 0) {
      delay += static_cast<Nanos>(
          rng_.below(static_cast<std::uint64_t>(model.jitter) + 1));
    }
    scheduler = scheduler_;

    if (scheduler == nullptr && delay > 0) {
      // Wall-clock delayed delivery via the timer thread.
      if (!timer_thread_.joinable()) {
        timer_thread_ = std::thread([this] { timer_loop(); });
      }
      delayed_.push(Pending{WallClock::instance().now() + delay,
                            delayed_seq_++, to, std::move(bytes)});
      timer_cv_.notify_one();
      return Status::ok();
    }
  }

  if (scheduler != nullptr) {
    // Sim mode: the event loop owns time.
    std::string target = to;
    auto payload = std::make_shared<std::vector<std::byte>>(std::move(bytes));
    scheduler(delay, target, [this, target, payload] {
      deliver(target, std::move(*payload));
    });
    return Status::ok();
  }

  deliver(to, std::move(bytes));
  return Status::ok();
}

void InProcNetwork::deliver(const std::string& to,
                            std::vector<std::byte> bytes) {
  Receiver receiver;
  {
    std::lock_guard lock(mu_);
    if (killed_.contains(to)) return;
    auto it = endpoints_.find(to);
    if (it == endpoints_.end()) return;
    receiver = it->second->receiver_;
  }
  // Invoke outside the fabric lock: receivers enqueue into site inboxes.
  if (receiver) receiver(std::move(bytes));
}

void InProcNetwork::timer_loop() {
  std::unique_lock lock(mu_);
  while (!stop_) {
    if (delayed_.empty()) {
      timer_cv_.wait(lock, [this] { return stop_ || !delayed_.empty(); });
      continue;
    }
    Nanos now = WallClock::instance().now();
    if (delayed_.top().due > now) {
      timer_cv_.wait_for(lock,
                         std::chrono::nanoseconds(delayed_.top().due - now));
      continue;
    }
    Pending p = std::move(const_cast<Pending&>(delayed_.top()));
    delayed_.pop();
    lock.unlock();
    deliver(p.to, std::move(p.bytes));
    lock.lock();
  }
}

}  // namespace sdvm::net
