#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace sdvm::net {

namespace {

bool write_all(int fd, const void* data, std::size_t n, int* err) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (err != nullptr) *err = errno;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    ssize_t r = ::recv(fd, p, n, 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

/// "host:port" → sockaddr_in. Only IPv4 dotted-quad or "127.0.0.1" style
/// hosts are supported — the SDVM cluster list stores resolved addresses.
/// Strictly validated: a malformed port must come back as a Status, never
/// as an exception escaping the transport.
Result<sockaddr_in> parse_address(const std::string& addr) {
  auto colon = addr.rfind(':');
  if (colon == std::string::npos || colon + 1 >= addr.size()) {
    return Status::error(ErrorCode::kInvalidArgument, "bad address " + addr);
  }
  std::uint32_t port = 0;
  for (std::size_t i = colon + 1; i < addr.size(); ++i) {
    char c = addr[i];
    if (c < '0' || c > '9') {
      return Status::error(ErrorCode::kInvalidArgument,
                           "bad port in address " + addr);
    }
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 65535) {
      return Status::error(ErrorCode::kInvalidArgument,
                           "port out of range in address " + addr);
    }
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  std::string host = addr.substr(0, colon);
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    return Status::error(ErrorCode::kInvalidArgument, "bad host " + host);
  }
  return sa;
}

constexpr std::size_t kMaxFrame = 64 * 1024 * 1024;

}  // namespace

Nanos TcpTransport::now_nanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<std::unique_ptr<TcpTransport>> TcpTransport::listen(std::uint16_t port,
                                                           Receiver receiver) {
  return listen(port, std::move(receiver), Options{});
}

Result<std::unique_ptr<TcpTransport>> TcpTransport::listen(std::uint16_t port,
                                                           Receiver receiver,
                                                           Options options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::error(ErrorCode::kInternal,
                         std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return Status::error(ErrorCode::kUnavailable,
                         std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::error(ErrorCode::kInternal,
                         std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(sa);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);

  return std::unique_ptr<TcpTransport>(new TcpTransport(
      fd, ntohs(sa.sin_port), std::move(receiver), options));
}

TcpTransport::TcpTransport(int listen_fd, std::uint16_t port,
                           Receiver receiver, Options options)
    : options_(options),
      listen_fd_(listen_fd),
      port_(port),
      receiver_(std::move(receiver)) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpTransport::~TcpTransport() { close(); }

std::string TcpTransport::local_address() const {
  return "127.0.0.1:" + std::to_string(port_);
}

void TcpTransport::accept_loop() {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lock(mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    reader_fds_.push_back(fd);
    reader_threads_.emplace_back([this, fd] { read_loop(fd); });
  }
}

void TcpTransport::read_loop(int fd) {
  while (!stopping_.load()) {
    std::uint8_t header[4];
    if (!read_all(fd, header, 4)) break;
    std::size_t n = std::size_t{header[0]} | (std::size_t{header[1]} << 8) |
                    (std::size_t{header[2]} << 16) |
                    (std::size_t{header[3]} << 24);
    if (n > kMaxFrame) {
      stats_.frames_oversized.fetch_add(1, std::memory_order_relaxed);
      SDVM_WARN("tcp") << "oversized frame (" << n << " bytes), dropping peer";
      break;
    }
    std::vector<std::byte> payload(n);
    if (!read_all(fd, payload.data(), n)) break;
    if (receiver_ && !stopping_.load()) receiver_(std::move(payload));
  }
  // Deregister-and-close under mu_: close() shuts reader fds down while
  // holding mu_, so the fd can never be shut down after we released it
  // (and possibly after the number was reused for a new socket).
  std::lock_guard lock(mu_);
  reader_fds_.erase(std::remove(reader_fds_.begin(), reader_fds_.end(), fd),
                    reader_fds_.end());
  ::close(fd);
}

int TcpTransport::try_connect(const std::string& addr, int* err) {
  auto sa = parse_address(addr);
  if (!sa.is_ok()) {
    if (err != nullptr) *err = EINVAL;
    return -1;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err != nullptr) *err = errno;
    return -1;
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa.value()),
                     sizeof(sockaddr_in));
  if (rc != 0 && errno != EINPROGRESS) {
    if (err != nullptr) *err = errno;
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    // Poll in short slices so close() interrupts a hanging connect.
    Nanos waited = 0;
    const Nanos slice = 50'000'000;  // 50 ms
    bool ready = false;
    while (waited < options_.connect_timeout && !stopping_.load()) {
      pollfd pfd{fd, POLLOUT, 0};
      Nanos remain = options_.connect_timeout - waited;
      int timeout_ms =
          static_cast<int>(std::min(remain, slice) / 1'000'000);
      int pr = ::poll(&pfd, 1, std::max(timeout_ms, 1));
      if (pr > 0) {
        ready = true;
        break;
      }
      waited += std::min(remain, slice);
    }
    if (!ready) {
      if (err != nullptr) *err = ETIMEDOUT;
      ::close(fd);
      return -1;
    }
    int so_error = 0;
    socklen_t elen = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &elen);
    if (so_error != 0) {
      if (err != nullptr) *err = so_error;
      ::close(fd);
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for send/recv
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void TcpTransport::declare_unreachable(Peer& peer,
                                       std::unique_lock<std::mutex>& lk) {
  peer.unreachable = true;
  peer.unreachable_at = now_nanos();
  peer.attempts = 0;
  std::size_t dropped = peer.queue.size();
  peer.queue.clear();
  stats_.frames_dropped.fetch_add(dropped, std::memory_order_relaxed);
  stats_.peers_unreachable.fetch_add(1, std::memory_order_relaxed);
  SDVM_WARN("tcp") << "peer " << peer.addr << " unreachable ("
                   << std::strerror(peer.last_errno) << "), dropped "
                   << dropped << " queued frame(s)";
  if (hook_ && !stopping_.load()) {
    lk.unlock();
    hook_(peer.addr);
    lk.lock();
  }
}

void TcpTransport::writer_loop(Peer& peer) {
  Xoshiro256 rng(options_.jitter_seed ^ std::hash<std::string>{}(peer.addr));
  std::unique_lock lk(peer.mu);
  while (true) {
    peer.cv.wait(lk, [&] {
      return peer.stop || (!peer.queue.empty() && !peer.unreachable);
    });
    if (peer.stop) break;

    if (peer.attempts >= options_.max_attempts) {
      declare_unreachable(peer, lk);
      continue;
    }
    if (peer.attempts > 0) {
      // Exponential backoff with jitter before the next attempt; waiting
      // on the cv keeps close() responsive.
      Nanos backoff = options_.backoff_base;
      for (int i = 1; i < peer.attempts && backoff < options_.backoff_max;
           ++i) {
        backoff *= 2;
      }
      backoff = std::min(backoff, options_.backoff_max);
      backoff += static_cast<Nanos>(
          rng.below(static_cast<std::uint64_t>(backoff / 2 + 1)));
      peer.cv.wait_for(lk, std::chrono::nanoseconds(backoff),
                       [&] { return peer.stop; });
      if (peer.stop) break;
    }

    if (peer.fd < 0) {
      lk.unlock();
      int err = 0;
      int fd = try_connect(peer.addr, &err);
      lk.lock();
      if (peer.stop) {
        if (fd >= 0) ::close(fd);
        break;
      }
      if (fd < 0) {
        peer.last_errno = err;
        ++peer.attempts;
        stats_.send_retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      peer.fd = fd;
      peer.last_errno = 0;
      if (peer.ever_connected) {
        stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
        SDVM_INFO("tcp") << "reconnected to " << peer.addr;
      }
      peer.ever_connected = true;
    }
    if (peer.queue.empty() || peer.unreachable) continue;

    // The frame stays at the head until fully sent, so a broken write is
    // retried on the fresh connection, never silently lost.
    const std::vector<std::byte>& frame = peer.queue.front();
    int fd = peer.fd;
    lk.unlock();
    int err = 0;
    bool ok = write_all(fd, frame.data(), frame.size(), &err);
    lk.lock();
    if (ok) {
      stats_.frames_sent.fetch_add(1, std::memory_order_relaxed);
      stats_.bytes_sent.fetch_add(frame.size(), std::memory_order_relaxed);
      peer.queue.pop_front();
      peer.attempts = 0;
    } else {
      // EPIPE/ECONNRESET or similar: the writer owns the outgoing fd, so
      // close it (under peer.mu — close() only shuts fds down under the
      // same lock) and reconnect on the next pass.
      peer.last_errno = err;
      ++peer.attempts;
      stats_.send_retries.fetch_add(1, std::memory_order_relaxed);
      if (peer.fd == fd) {
        ::close(fd);
        peer.fd = -1;
      }
    }
  }
  if (peer.fd >= 0) {
    ::close(peer.fd);
    peer.fd = -1;
  }
}

Status TcpTransport::send(const std::string& to, std::vector<std::byte> bytes) {
  if (bytes.size() > kMaxFrame) {
    return Status::error(ErrorCode::kInvalidArgument, "frame too large");
  }
  {
    auto sa = parse_address(to);
    if (!sa.is_ok()) return sa.status();
  }
  if (stopping_.load()) {
    return Status::error(ErrorCode::kUnavailable, "transport closed");
  }

  std::shared_ptr<Peer> peer;
  {
    std::lock_guard lock(mu_);
    // Checked under mu_: close() sets stopping_ before snapshotting peers_,
    // so a peer created here is guaranteed to be joined by close().
    if (stopping_.load()) {
      return Status::error(ErrorCode::kUnavailable, "transport closed");
    }
    auto it = peers_.find(to);
    if (it == peers_.end()) {
      peer = std::make_shared<Peer>(to);
      peer->writer = std::thread([this, p = peer.get()] { writer_loop(*p); });
      peers_[to] = peer;
    } else {
      peer = it->second;
    }
  }

  std::uint8_t header[4] = {
      static_cast<std::uint8_t>(bytes.size()),
      static_cast<std::uint8_t>(bytes.size() >> 8),
      static_cast<std::uint8_t>(bytes.size() >> 16),
      static_cast<std::uint8_t>(bytes.size() >> 24),
  };
  std::vector<std::byte> framed(4 + bytes.size());
  std::memcpy(framed.data(), header, 4);
  std::memcpy(framed.data() + 4, bytes.data(), bytes.size());

  std::lock_guard plk(peer->mu);
  if (peer->unreachable) {
    if (now_nanos() - peer->unreachable_at < options_.unreachable_cooldown) {
      stats_.frames_dropped.fetch_add(1, std::memory_order_relaxed);
      return Status::error(ErrorCode::kUnavailable,
                           "peer " + to + " unreachable");
    }
    // Cooldown elapsed: re-probe with a fresh retry budget.
    peer->unreachable = false;
    peer->attempts = 0;
  }
  if (peer->queue.size() >= options_.max_queued_frames) {
    stats_.frames_dropped.fetch_add(1, std::memory_order_relaxed);
    return Status::error(ErrorCode::kResourceExhausted,
                         "outbound queue to " + to + " full");
  }
  peer->queue.push_back(std::move(framed));
  peer->cv.notify_all();
  return Status::ok();
}

TcpTransport::Stats TcpTransport::stats() const {
  Stats s;
  s.frames_sent = stats_.frames_sent.load(std::memory_order_relaxed);
  s.bytes_sent = stats_.bytes_sent.load(std::memory_order_relaxed);
  s.frames_dropped = stats_.frames_dropped.load(std::memory_order_relaxed);
  s.send_retries = stats_.send_retries.load(std::memory_order_relaxed);
  s.reconnects = stats_.reconnects.load(std::memory_order_relaxed);
  s.peers_unreachable =
      stats_.peers_unreachable.load(std::memory_order_relaxed);
  s.frames_oversized =
      stats_.frames_oversized.load(std::memory_order_relaxed);
  return s;
}

TcpTransport::PeerState TcpTransport::peer_state(const std::string& to) const {
  std::shared_ptr<Peer> peer;
  {
    std::lock_guard lock(mu_);
    auto it = peers_.find(to);
    if (it == peers_.end()) return {};
    peer = it->second;
  }
  std::lock_guard plk(peer->mu);
  PeerState s;
  s.known = true;
  s.unreachable = peer->unreachable;
  s.last_errno = peer->last_errno;
  s.queued = peer->queue.size();
  return s;
}

void TcpTransport::reset_peer(const std::string& to) {
  std::shared_ptr<Peer> peer;
  {
    std::lock_guard lock(mu_);
    auto it = peers_.find(to);
    if (it == peers_.end()) return;
    peer = it->second;
  }
  std::lock_guard plk(peer->mu);
  peer->unreachable = false;
  peer->attempts = 0;
  peer->cv.notify_all();
}

void TcpTransport::close() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;

  // Unblock accept(); the fd itself is closed after the thread joins.
  ::shutdown(listen_fd_, SHUT_RDWR);

  // Stop the writers first: each owns its outgoing fd and closes it on the
  // way out. The shutdown (under peer->mu, like every fd transition)
  // unblocks a writer stuck in a blocking send.
  std::vector<std::shared_ptr<Peer>> peers;
  {
    std::lock_guard lock(mu_);
    for (auto& [addr, peer] : peers_) peers.push_back(peer);
  }
  for (auto& peer : peers) {
    std::lock_guard plk(peer->mu);
    peer->stop = true;
    if (peer->fd >= 0) ::shutdown(peer->fd, SHUT_RDWR);
    peer->cv.notify_all();
  }
  for (auto& peer : peers) {
    if (peer->writer.joinable()) peer->writer.join();
  }

  {
    std::lock_guard lock(mu_);
    // Wake blocked readers. Readers deregister-and-close under mu_, so any
    // fd still listed here is guaranteed live.
    for (int fd : reader_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  std::vector<std::thread> readers;
  {
    std::lock_guard lock(mu_);
    readers.swap(reader_threads_);
  }
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
}

}  // namespace sdvm::net
