#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <limits.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/log.hpp"

namespace sdvm::net {

namespace {

/// "host:port" → sockaddr_in. Only IPv4 dotted-quad or "127.0.0.1" style
/// hosts are supported — the SDVM cluster list stores resolved addresses.
/// Strictly validated: a malformed port must come back as a Status, never
/// as an exception escaping the transport.
Result<sockaddr_in> parse_address(const std::string& addr) {
  auto colon = addr.rfind(':');
  if (colon == std::string::npos || colon + 1 >= addr.size()) {
    return Status::error(ErrorCode::kInvalidArgument, "bad address " + addr);
  }
  std::uint32_t port = 0;
  for (std::size_t i = colon + 1; i < addr.size(); ++i) {
    char c = addr[i];
    if (c < '0' || c > '9') {
      return Status::error(ErrorCode::kInvalidArgument,
                           "bad port in address " + addr);
    }
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 65535) {
      return Status::error(ErrorCode::kInvalidArgument,
                           "port out of range in address " + addr);
    }
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  std::string host = addr.substr(0, colon);
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    return Status::error(ErrorCode::kInvalidArgument, "bad host " + host);
  }
  return sa;
}

/// Per-frame payload cap (unchanged from the writer-thread transport).
constexpr std::size_t kMaxFrame = 64 * 1024 * 1024;
/// Receiver-side cap on one batch body; anything a legal sender composes
/// fits (a singleton batch of a max frame is ~64 MiB).
constexpr std::size_t kMaxBatchBody = 2 * kMaxFrame;
/// Batch header: u32 body_len + u16 frame_count.
constexpr std::size_t kBatchHeader = 6;
/// iovecs per writev call (comfortably under IOV_MAX everywhere).
constexpr int kIovChunk = 512;
/// Inbound bytes drained per connection per loop pass; level-triggered
/// epoll re-reports, so a firehose peer cannot starve senders of mu_.
constexpr std::size_t kMaxReadPerPass = 1 * 1024 * 1024;

void put_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_le32(const std::byte* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint16_t get_le16(const std::byte* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// xorshift64* step — the per-peer deterministic jitter stream.
std::uint64_t jitter_next(std::uint64_t* state) {
  std::uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1Dull;
}

}  // namespace

Nanos TcpTransport::now_nanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<std::unique_ptr<TcpTransport>> TcpTransport::listen(std::uint16_t port,
                                                           Receiver receiver) {
  return listen(port, std::move(receiver), Options{});
}

Result<std::unique_ptr<TcpTransport>> TcpTransport::listen(std::uint16_t port,
                                                           Receiver receiver,
                                                           Options options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::error(ErrorCode::kInternal,
                         std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return Status::error(ErrorCode::kUnavailable,
                         std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return Status::error(ErrorCode::kInternal,
                         std::string("listen: ") + std::strerror(errno));
  }
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return Status::error(ErrorCode::kInternal, "fcntl O_NONBLOCK failed");
  }
  socklen_t len = sizeof(sa);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);

  return std::unique_ptr<TcpTransport>(new TcpTransport(
      fd, ntohs(sa.sin_port), std::move(receiver), options));
}

TcpTransport::TcpTransport(int listen_fd, std::uint16_t port,
                           Receiver receiver, Options options)
    : options_(options),
      listen_fd_(listen_fd),
      port_(port),
      receiver_(std::move(receiver)) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);

  auto add = [&](int fd, FdRecord* rec) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = rec;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  };
  add(listen_fd_, &listen_rec_);
  add(wake_fd_, &wake_rec_);
  add(timer_fd_, &timer_rec_);

  loop_thread_ = std::thread([this] { loop(); });
}

TcpTransport::~TcpTransport() { close(); }

std::string TcpTransport::local_address() const {
  return "127.0.0.1:" + std::to_string(port_);
}

void TcpTransport::wake_loop() {
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t w = ::write(wake_fd_, &one, sizeof(one));
}

// --- enqueue side (any thread) ----------------------------------------------

Status TcpTransport::send(const std::string& to, std::vector<std::byte> bytes) {
  if (bytes.size() > kMaxFrame) {
    return Status::error(ErrorCode::kInvalidArgument, "frame too large");
  }
  bool wake = false;
  {
    std::lock_guard lock(mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      return Status::error(ErrorCode::kUnavailable, "transport closed");
    }
    auto it = peers_.find(to);
    Peer* peer;
    if (it == peers_.end()) {
      auto sa = parse_address(to);
      if (!sa.is_ok()) return sa.status();
      auto p = std::make_unique<Peer>(to);
      p->jitter_state =
          (options_.jitter_seed ^ std::hash<std::string>{}(to)) | 1;
      peer = p.get();
      peers_[to] = std::move(p);
    } else {
      peer = it->second.get();
    }

    Nanos now = now_nanos();
    if (peer->unreachable) {
      if (now - peer->unreachable_at < options_.unreachable_cooldown) {
        ++stats_.frames_dropped;
        return Status::error(ErrorCode::kUnavailable,
                             "peer " + to + " unreachable");
      }
      peer->unreachable = false;
      peer->attempts = 0;
      peer->retry_at = 0;
    }
    if (peer->queue.size() >= options_.max_queued_frames) {
      ++stats_.frames_dropped;
      return Status::error(ErrorCode::kResourceExhausted,
                           "outbound queue to " + to + " full");
    }
    if (peer->queue.size() == peer->inflight_frames) {
      peer->batch_started = now;
    }
    peer->queued_bytes += bytes.size();
    peer->queue.push_back(std::move(bytes));
    wake = loop_sleeping_;
  }
  if (wake) wake_loop();
  return Status::ok();
}

Status TcpTransport::send_batch(const std::string& to,
                                std::vector<Frame> frames) {
  if (frames.empty()) return Status::ok();

  Status first = Status::ok();
  bool wake = false;
  {
    std::lock_guard lock(mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      return Status::error(ErrorCode::kUnavailable, "transport closed");
    }
    auto it = peers_.find(to);
    Peer* peer;
    if (it == peers_.end()) {
      // First contact: validate the address once; a known peer key is
      // already proven well-formed, so the hot path skips the parse.
      auto sa = parse_address(to);
      if (!sa.is_ok()) return sa.status();
      auto p = std::make_unique<Peer>(to);
      p->jitter_state =
          (options_.jitter_seed ^ std::hash<std::string>{}(to)) | 1;
      peer = p.get();
      peers_[to] = std::move(p);
    } else {
      peer = it->second.get();
    }

    Nanos now = now_nanos();
    if (peer->unreachable) {
      if (now - peer->unreachable_at < options_.unreachable_cooldown) {
        stats_.frames_dropped += frames.size();
        return Status::error(ErrorCode::kUnavailable,
                             "peer " + to + " unreachable");
      }
      // Cooldown elapsed: re-probe with a fresh retry budget.
      peer->unreachable = false;
      peer->attempts = 0;
      peer->retry_at = 0;
    }

    for (auto& f : frames) {
      if (f.size() > kMaxFrame) {
        if (first.is_ok()) {
          first = Status::error(ErrorCode::kInvalidArgument, "frame too large");
        }
        continue;
      }
      if (peer->queue.size() >= options_.max_queued_frames) {
        ++stats_.frames_dropped;
        if (first.is_ok()) {
          first = Status::error(ErrorCode::kResourceExhausted,
                                "outbound queue to " + to + " full");
        }
        continue;
      }
      if (peer->queue.size() == peer->inflight_frames) {
        peer->batch_started = now;  // first frame of a new accumulation
      }
      peer->queued_bytes += f.size();
      peer->queue.push_back(std::move(f));
    }
    wake = loop_sleeping_;
  }
  if (wake) wake_loop();
  return first;
}

void TcpTransport::flush(const std::string& to) {
  bool wake = false;
  {
    std::lock_guard lock(mu_);
    auto it = peers_.find(to);
    if (it == peers_.end()) return;
    if (it->second->queue.empty()) return;
    it->second->force_flush = true;
    wake = loop_sleeping_;
  }
  if (wake) wake_loop();
}

void TcpTransport::reset_peer(const std::string& to) {
  bool wake = false;
  {
    std::lock_guard lock(mu_);
    auto it = peers_.find(to);
    if (it == peers_.end()) return;
    it->second->unreachable = false;
    it->second->attempts = 0;
    it->second->retry_at = 0;
    wake = loop_sleeping_;
  }
  if (wake) wake_loop();
}

TcpTransport::Stats TcpTransport::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

TcpTransport::PeerState TcpTransport::peer_state(const std::string& to) const {
  std::lock_guard lock(mu_);
  auto it = peers_.find(to);
  if (it == peers_.end()) return {};
  PeerState s;
  s.known = true;
  s.unreachable = it->second->unreachable;
  s.last_errno = it->second->last_errno;
  s.queued = it->second->queue.size();
  return s;
}

void TcpTransport::close() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  wake_loop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The fixed fds are closed here, after the join: the loop thread and any
  // concurrent wake_loop() caller may touch them right up to loop exit.
  ::close(listen_fd_);
  ::close(epoll_fd_);
  ::close(wake_fd_);
  ::close(timer_fd_);
}

// --- event loop (single thread owns every fd) -------------------------------

void TcpTransport::loop() {
  std::vector<epoll_event> events(128);
  std::vector<Frame> delivered;
  std::vector<std::string> verdicts;

  for (;;) {
    {
      std::lock_guard lock(mu_);
      if (stopping_.load(std::memory_order_relaxed)) break;
      Nanos now = now_nanos();
      for (auto& [addr, peer] : peers_) {
        service_peer(*peer, now, &verdicts);
      }
      arm_timer(now);
      loop_sleeping_ = true;
    }
    if (!verdicts.empty()) {
      for (const std::string& addr : verdicts) {
        if (hook_ && !stopping_.load()) hook_(addr);
      }
      verdicts.clear();
    }

    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), -1);
    {
      std::lock_guard lock(mu_);
      loop_sleeping_ = false;
      if (stopping_.load(std::memory_order_relaxed)) break;
      Nanos now = now_nanos();
      for (int i = 0; i < n; ++i) {
        auto* rec = static_cast<FdRecord*>(events[static_cast<std::size_t>(i)]
                                               .data.ptr);
        std::uint32_t ev = events[static_cast<std::size_t>(i)].events;
        switch (rec->kind) {
          case FdRecord::Kind::kListen:
            accept_ready(now);
            break;
          case FdRecord::Kind::kWake: {
            std::uint64_t buf = 0;
            while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
            }
            break;
          }
          case FdRecord::Kind::kTimer: {
            std::uint64_t expirations = 0;
            while (::read(timer_fd_, &expirations, sizeof(expirations)) > 0) {
            }
            break;  // deadlines handled by the next service pass
          }
          case FdRecord::Kind::kInbound:
            inbound_ready(rec->inbound, &delivered);
            break;
          case FdRecord::Kind::kPeer: {
            Peer& peer = *rec->peer;
            if (peer.fd < 0) break;  // stale event after a drop
            if (peer.conn == Peer::Conn::kConnecting) {
              on_connect_event(peer, now, &verdicts);
              break;
            }
            if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
              connection_broken(peer, EPIPE, now, &verdicts);
              break;
            }
            if ((ev & EPOLLIN) != 0) {
              // Our protocol never sends data back on an outgoing
              // connection, so readable means EOF/RST (peer restart).
              char probe[256];
              ssize_t r = ::recv(peer.fd, probe, sizeof(probe), 0);
              if (r == 0 || (r < 0 && errno != EAGAIN && errno != EINTR &&
                             errno != EWOULDBLOCK)) {
                connection_broken(peer, r == 0 ? EPIPE : errno, now,
                                  &verdicts);
                break;
              }
            }
            if ((ev & EPOLLOUT) != 0) {
              try_write(peer, now, &verdicts);
            }
            break;
          }
        }
      }
    }
    if (!delivered.empty()) {
      if (receiver_ && !stopping_.load()) {
        for (auto& frame : delivered) receiver_(std::move(frame));
      }
      delivered.clear();
    }
    if (!verdicts.empty()) {
      for (const std::string& addr : verdicts) {
        if (hook_ && !stopping_.load()) hook_(addr);
      }
      verdicts.clear();
    }
  }

  // Shutdown: connection fds are loop-thread-only, so teardown is plain
  // closes. The fixed fds (listen/epoll/wake/timer) are closed by close()
  // AFTER the join — wake_loop() callers write to wake_fd_ concurrently
  // with this cleanup, so closing it here would race.
  {
    std::lock_guard lock(mu_);
    for (auto& [addr, peer] : peers_) {
      if (peer->fd >= 0) {
        ::close(peer->fd);
        peer->fd = -1;
        peer->conn = Peer::Conn::kIdle;
      }
    }
  }
  for (auto& [fd, in] : inbounds_) ::close(fd);
  inbounds_.clear();
  inbound_recs_.clear();
  peer_recs_.clear();
}

// --- outgoing side ----------------------------------------------------------

Nanos TcpTransport::backoff_for(Peer& peer) {
  Nanos backoff = options_.backoff_base;
  for (int i = 1; i < peer.attempts && backoff < options_.backoff_max; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, options_.backoff_max);
  backoff += static_cast<Nanos>(
      jitter_next(&peer.jitter_state) %
      static_cast<std::uint64_t>(backoff / 2 + 1));
  return backoff;
}

/// Decides whether the peer's unflushed frames should leave now.
/// `*deadline_hit`/`*size_hit` report the trigger for the stats.
static bool flush_due(const TcpTransport::Options& options, Nanos now,
                      std::size_t unflushed_frames,
                      std::size_t unflushed_bytes, Nanos batch_started,
                      bool force, bool* deadline_hit, bool* size_hit) {
  *deadline_hit = false;
  *size_hit = false;
  if (unflushed_frames == 0) return false;
  if (force) return true;
  std::size_t frame_cap = std::clamp<std::size_t>(
      options.flush_frames, 1, TcpTransport::kMaxFramesPerBatch);
  if (unflushed_frames >= frame_cap || unflushed_bytes >= options.flush_bytes) {
    *size_hit = true;
    return true;
  }
  if (options.flush_deadline <= 0) return true;  // eager mode
  if (now - batch_started >= options.flush_deadline) {
    *deadline_hit = true;
    return true;
  }
  return false;
}

void TcpTransport::service_peer(Peer& peer, Nanos now,
                                std::vector<std::string>* verdicts) {
  if (peer.unreachable) return;
  if (peer.conn == Peer::Conn::kConnecting) {
    if (now >= peer.connect_deadline) {
      connection_broken(peer, ETIMEDOUT, now, verdicts);
    }
    return;
  }
  if (peer.queue.empty()) return;
  if (peer.conn == Peer::Conn::kIdle) {
    if (peer.attempts > 0 && now < peer.retry_at) return;  // backing off
    start_connect(peer, now, verdicts);
  }
  if (peer.conn == Peer::Conn::kConnected) {
    try_write(peer, now, verdicts);
  }
}

void TcpTransport::start_connect(Peer& peer, Nanos now,
                                 std::vector<std::string>* verdicts) {
  auto sa = parse_address(peer.addr);
  if (!sa.is_ok()) {
    peer.last_errno = EINVAL;
    ++peer.attempts;
    ++stats_.send_retries;
    if (peer.attempts >= options_.max_attempts) {
      declare_unreachable(peer, verdicts);
    } else {
      peer.retry_at = now + backoff_for(peer);
    }
    return;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 || !set_nonblocking(fd)) {
    if (fd >= 0) ::close(fd);
    peer.last_errno = errno;
    ++peer.attempts;
    ++stats_.send_retries;
    if (peer.attempts >= options_.max_attempts) {
      declare_unreachable(peer, verdicts);
    } else {
      peer.retry_at = now + backoff_for(peer);
    }
    return;
  }

  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa.value()),
                     sizeof(sockaddr_in));
  if (rc != 0 && errno != EINPROGRESS) {
    int err = errno;
    ::close(fd);
    peer.last_errno = err;
    ++peer.attempts;
    ++stats_.send_retries;
    if (peer.attempts >= options_.max_attempts) {
      declare_unreachable(peer, verdicts);
    } else {
      peer.retry_at = now + backoff_for(peer);
    }
    return;
  }

  peer.fd = fd;
  auto& rec = peer_recs_[&peer];
  if (!rec) {
    rec = std::make_unique<FdRecord>();
    rec->kind = FdRecord::Kind::kPeer;
    rec->peer = &peer;
  }
  epoll_event ev{};
  ev.data.ptr = rec.get();
  if (rc == 0) {
    // Localhost fast path: connected synchronously.
    peer.conn = Peer::Conn::kConnected;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    peer.last_errno = 0;
    if (peer.ever_connected) {
      ++stats_.reconnects;
      SDVM_INFO("tcp") << "reconnected to " << peer.addr;
    }
    peer.ever_connected = true;
    ev.events = EPOLLIN;
    peer.epoll_mask = EPOLLIN;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  } else {
    peer.conn = Peer::Conn::kConnecting;
    peer.connect_deadline = now + options_.connect_timeout;
    ev.events = EPOLLOUT;
    peer.epoll_mask = EPOLLOUT;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void TcpTransport::on_connect_event(Peer& peer, Nanos now,
                                    std::vector<std::string>* verdicts) {
  int so_error = 0;
  socklen_t elen = sizeof(so_error);
  ::getsockopt(peer.fd, SOL_SOCKET, SO_ERROR, &so_error, &elen);
  if (so_error != 0) {
    connection_broken(peer, so_error, now, verdicts);
    return;
  }
  peer.conn = Peer::Conn::kConnected;
  int one = 1;
  ::setsockopt(peer.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  peer.last_errno = 0;
  if (peer.ever_connected) {
    ++stats_.reconnects;
    SDVM_INFO("tcp") << "reconnected to " << peer.addr;
  }
  peer.ever_connected = true;
  try_write(peer, now, verdicts);
}

void TcpTransport::compose_batch(Peer& peer, Nanos now) {
  std::size_t frame_cap = std::clamp<std::size_t>(
      options_.flush_frames, 1, kMaxFramesPerBatch);
  std::size_t body_cap =
      std::min(std::max(options_.flush_bytes, std::size_t{64 * 1024}),
               kMaxBatchBody);
  std::size_t n = 0;
  std::size_t body = 0;
  while (n < frame_cap && n < peer.queue.size()) {
    std::size_t wire = 4 + peer.queue[n].size();
    if (n > 0 && body + wire > body_cap) break;
    body += wire;
    ++n;
  }
  peer.inflight_frames = n;
  peer.inflight_body = body;
  peer.sent_off = 0;
  put_le32(peer.header.data(), static_cast<std::uint32_t>(body));
  peer.header[4] = static_cast<std::uint8_t>(n);
  peer.header[5] = static_cast<std::uint8_t>(n >> 8);
  peer.force_flush = false;
  if (peer.queue.size() > n) peer.batch_started = now;
}

void TcpTransport::try_write(Peer& peer, Nanos now,
                             std::vector<std::string>* verdicts) {
  while (peer.conn == Peer::Conn::kConnected) {
    if (peer.inflight_frames == 0) {
      bool deadline_hit = false;
      bool size_hit = false;
      if (!flush_due(options_, now, peer.queue.size(), peer.queued_bytes,
                     peer.batch_started, peer.force_flush, &deadline_hit,
                     &size_hit)) {
        break;
      }
      if (deadline_hit) ++stats_.flush_deadline_hits;
      if (size_hit) ++stats_.flush_size_hits;
      compose_batch(peer, now);
    }

    const std::size_t total = kBatchHeader + peer.inflight_body;
    // Scatter-gather directly out of the queue: header, then per frame a
    // little-endian length prefix and the payload — no copy of payloads.
    std::vector<std::array<std::uint8_t, 4>> lens;
    lens.reserve(peer.inflight_frames);
    iovec iov[kIovChunk];
    int iovn = 0;
    std::size_t attempted = 0;
    auto add = [&](const void* p, std::size_t len) {
      if (len == 0) return;
      iov[iovn].iov_base = const_cast<void*>(p);
      iov[iovn].iov_len = len;
      ++iovn;
      attempted += len;
    };
    std::size_t skip = peer.sent_off;
    if (skip < kBatchHeader) {
      add(peer.header.data() + skip, kBatchHeader - skip);
      skip = 0;
    } else {
      skip -= kBatchHeader;
    }
    for (std::size_t i = 0; i < peer.inflight_frames && iovn + 2 <= kIovChunk;
         ++i) {
      const Frame& f = peer.queue[i];
      std::size_t wire = 4 + f.size();
      if (skip >= wire) {
        skip -= wire;
        continue;
      }
      lens.emplace_back();
      put_le32(lens.back().data(), static_cast<std::uint32_t>(f.size()));
      if (skip < 4) {
        add(lens.back().data() + skip, 4 - skip);
        skip = 0;
      } else {
        skip -= 4;
      }
      add(f.data() + skip, f.size() - skip);
      skip = 0;
    }

    ssize_t w = ::writev(peer.fd, iov, iovn);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      connection_broken(peer, errno, now, verdicts);
      break;
    }
    peer.sent_off += static_cast<std::size_t>(w);
    if (peer.sent_off < total) {
      if (static_cast<std::size_t>(w) < attempted) continue;  // likely full
      continue;  // more iov chunks to go
    }

    // Batch fully on the wire.
    std::size_t frames = peer.inflight_frames;
    for (std::size_t i = 0; i < frames; ++i) {
      peer.queued_bytes -= peer.queue.front().size();
      peer.queue.pop_front();
    }
    stats_.frames_sent += frames;
    stats_.bytes_sent += total;
    ++stats_.batches_sent;
    std::size_t bucket = std::min<std::size_t>(
        Stats::kBatchBuckets - 1,
        static_cast<std::size_t>(std::bit_width(frames) - 1));
    ++stats_.frames_per_batch[bucket];
    peer.inflight_frames = 0;
    peer.inflight_body = 0;
    peer.sent_off = 0;
    peer.attempts = 0;
    peer.last_errno = 0;
  }
  update_peer_interest(peer);
}

void TcpTransport::connection_broken(Peer& peer, int err, Nanos now,
                                     std::vector<std::string>* verdicts) {
  // Frames whose bytes all reached the socket count as sent; the rest stay
  // queued and are re-sent (from their first byte) after the reconnect —
  // the peer's parse state reset with the connection, so that is safe.
  if (peer.inflight_frames > 0) {
    std::size_t pos = kBatchHeader;
    std::size_t popped = 0;
    std::uint64_t popped_wire = 0;
    while (popped < peer.inflight_frames) {
      std::size_t wire = 4 + peer.queue.front().size();
      if (peer.sent_off < pos + wire) break;
      pos += wire;
      popped_wire += wire;
      peer.queued_bytes -= peer.queue.front().size();
      peer.queue.pop_front();
      ++popped;
    }
    stats_.frames_sent += popped;
    stats_.bytes_sent += popped_wire;
    peer.inflight_frames = 0;
    peer.inflight_body = 0;
    peer.sent_off = 0;
  }
  drop_connection(peer);
  peer.last_errno = err;
  ++peer.attempts;
  ++stats_.send_retries;
  if (peer.attempts >= options_.max_attempts) {
    declare_unreachable(peer, verdicts);
  } else {
    peer.retry_at = now + backoff_for(peer);
  }
}

void TcpTransport::drop_connection(Peer& peer) {
  if (peer.fd >= 0) {
    ::close(peer.fd);  // implicitly deregisters from epoll
    peer.fd = -1;
  }
  peer.conn = Peer::Conn::kIdle;
  peer.epoll_mask = 0;
}

void TcpTransport::declare_unreachable(Peer& peer,
                                       std::vector<std::string>* verdicts) {
  peer.unreachable = true;
  peer.unreachable_at = now_nanos();
  peer.attempts = 0;
  peer.retry_at = 0;
  std::size_t dropped = peer.queue.size();
  peer.queue.clear();
  peer.queued_bytes = 0;
  peer.inflight_frames = 0;
  peer.inflight_body = 0;
  peer.sent_off = 0;
  peer.force_flush = false;
  drop_connection(peer);
  stats_.frames_dropped += dropped;
  ++stats_.peers_unreachable;
  SDVM_WARN("tcp") << "peer " << peer.addr << " unreachable ("
                   << std::strerror(peer.last_errno) << "), dropped "
                   << dropped << " queued frame(s)";
  if (verdicts != nullptr) verdicts->push_back(peer.addr);
}

void TcpTransport::update_peer_interest(Peer& peer) {
  if (peer.fd < 0) return;
  std::uint32_t want = 0;
  if (peer.conn == Peer::Conn::kConnecting) {
    want = EPOLLOUT;
  } else if (peer.conn == Peer::Conn::kConnected) {
    want = EPOLLIN;
    if (peer.inflight_frames > 0) want |= EPOLLOUT;
  }
  if (want == peer.epoll_mask) return;
  auto it = peer_recs_.find(&peer);
  if (it == peer_recs_.end()) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.ptr = it->second.get();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, peer.fd, &ev);
  peer.epoll_mask = want;
}

// --- timers ------------------------------------------------------------------

Nanos TcpTransport::next_deadline(Nanos now) const {
  Nanos next = -1;
  auto consider = [&](Nanos d) {
    if (d >= 0 && (next < 0 || d < next)) next = d;
  };
  for (const auto& [addr, peer] : peers_) {
    if (peer->unreachable) continue;
    if (peer->conn == Peer::Conn::kConnecting) {
      consider(peer->connect_deadline);
      continue;
    }
    if (peer->queue.empty()) continue;
    if (peer->conn == Peer::Conn::kIdle && peer->attempts > 0) {
      consider(peer->retry_at);
      continue;
    }
    if (peer->conn == Peer::Conn::kConnected && peer->inflight_frames == 0 &&
        options_.flush_deadline > 0) {
      consider(peer->batch_started + options_.flush_deadline);
    }
  }
  (void)now;
  return next;
}

void TcpTransport::arm_timer(Nanos now) {
  Nanos deadline = next_deadline(now);
  itimerspec its{};
  if (deadline >= 0) {
    Nanos rel = std::max<Nanos>(deadline - now, 1);
    its.it_value.tv_sec = static_cast<time_t>(rel / kNanosPerSecond);
    its.it_value.tv_nsec = static_cast<long>(rel % kNanosPerSecond);
  }
  ::timerfd_settime(timer_fd_, 0, &its, nullptr);
}

// --- inbound side ------------------------------------------------------------

void TcpTransport::accept_ready(Nanos now) {
  (void)now;
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or a transient error: epoll re-reports
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto in = std::make_unique<Inbound>();
    in->fd = fd;
    auto rec = std::make_unique<FdRecord>();
    rec->kind = FdRecord::Kind::kInbound;
    rec->inbound = in.get();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = rec.get();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    inbound_recs_[in.get()] = std::move(rec);
    inbounds_[fd] = std::move(in);
  }
}

void TcpTransport::close_inbound(Inbound* in) {
  int fd = in->fd;
  ::close(fd);
  inbound_recs_.erase(in);
  inbounds_.erase(fd);  // frees `in`
}

void TcpTransport::inbound_ready(Inbound* in, std::vector<Frame>* delivered) {
  // Drain a bounded amount; level-triggered epoll re-reports leftovers.
  std::size_t drained = 0;
  bool eof = false;
  while (drained < kMaxReadPerPass) {
    std::byte chunk[64 * 1024];
    ssize_t r = ::recv(in->fd, chunk, sizeof(chunk), 0);
    if (r > 0) {
      in->buf.insert(in->buf.end(), chunk, chunk + r);
      drained += static_cast<std::size_t>(r);
      if (static_cast<std::size_t>(r) < sizeof(chunk)) break;
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (r < 0 && errno == EINTR) continue;
    eof = true;
    break;
  }

  // Parse as many complete batches as arrived.
  for (;;) {
    std::size_t avail = in->buf.size() - in->off;
    if (avail < 4) break;
    const std::byte* p = in->buf.data() + in->off;
    std::size_t body = get_le32(p);
    if (body > kMaxBatchBody) {
      ++stats_.frames_oversized;
      SDVM_WARN("tcp") << "oversized batch (" << body
                       << " bytes), dropping peer";
      close_inbound(in);
      return;
    }
    if (avail < kBatchHeader) break;
    std::size_t count = get_le16(p + 4);
    if (count < 1 || count > kMaxFramesPerBatch) {
      ++stats_.batches_malformed;
      SDVM_WARN("tcp") << "malformed batch (count " << count
                       << "), dropping peer";
      close_inbound(in);
      return;
    }
    if (avail < kBatchHeader + body) break;

    std::size_t pos = in->off + kBatchHeader;
    const std::size_t end = pos + body;
    std::size_t parsed = 0;
    while (pos < end && parsed < count) {
      if (end - pos < 4) break;
      std::size_t flen = get_le32(in->buf.data() + pos);
      pos += 4;
      if (flen > kMaxFrame) {
        ++stats_.frames_oversized;
        SDVM_WARN("tcp") << "oversized frame (" << flen
                         << " bytes), dropping peer";
        close_inbound(in);
        return;
      }
      if (flen > end - pos) break;
      delivered->emplace_back(in->buf.begin() + static_cast<std::ptrdiff_t>(pos),
                              in->buf.begin() +
                                  static_cast<std::ptrdiff_t>(pos + flen));
      pos += flen;
      ++parsed;
    }
    if (pos != end || parsed != count) {
      ++stats_.batches_malformed;
      SDVM_WARN("tcp") << "malformed batch body, dropping peer";
      close_inbound(in);
      return;
    }
    in->off = end;
  }

  // Compact the reassembly buffer once the parsed prefix gets large.
  if (in->off == in->buf.size()) {
    in->buf.clear();
    in->off = 0;
  } else if (in->off > 256 * 1024) {
    in->buf.erase(in->buf.begin(), in->buf.begin() +
                                       static_cast<std::ptrdiff_t>(in->off));
    in->off = 0;
  }

  if (eof) close_inbound(in);
}

}  // namespace sdvm::net
