#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.hpp"

namespace sdvm::net {

namespace {

Status write_all(int fd, const void* data, std::size_t n, std::mutex& mu) {
  std::lock_guard lock(mu);
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::error(ErrorCode::kUnavailable,
                           std::string("send: ") + std::strerror(errno));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return Status::ok();
}

bool read_all(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    ssize_t r = ::recv(fd, p, n, 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

/// "host:port" → sockaddr_in. Only IPv4 dotted-quad or "127.0.0.1" style
/// hosts are supported — the SDVM cluster list stores resolved addresses.
Result<sockaddr_in> parse_address(const std::string& addr) {
  auto colon = addr.rfind(':');
  if (colon == std::string::npos) {
    return Status::error(ErrorCode::kInvalidArgument, "bad address " + addr);
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(
      std::stoi(addr.substr(colon + 1))));
  std::string host = addr.substr(0, colon);
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    return Status::error(ErrorCode::kInvalidArgument, "bad host " + host);
  }
  return sa;
}

constexpr std::size_t kMaxFrame = 64 * 1024 * 1024;

}  // namespace

Result<std::unique_ptr<TcpTransport>> TcpTransport::listen(std::uint16_t port,
                                                           Receiver receiver) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::error(ErrorCode::kInternal,
                         std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return Status::error(ErrorCode::kUnavailable,
                         std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::error(ErrorCode::kInternal,
                         std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(sa);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);

  return std::unique_ptr<TcpTransport>(
      new TcpTransport(fd, ntohs(sa.sin_port), std::move(receiver)));
}

TcpTransport::TcpTransport(int listen_fd, std::uint16_t port,
                           Receiver receiver)
    : listen_fd_(listen_fd), port_(port), receiver_(std::move(receiver)) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpTransport::~TcpTransport() { close(); }

std::string TcpTransport::local_address() const {
  return "127.0.0.1:" + std::to_string(port_);
}

void TcpTransport::accept_loop() {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lock(mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    reader_fds_.push_back(fd);
    reader_threads_.emplace_back([this, fd] { read_loop(fd); });
  }
}

void TcpTransport::read_loop(int fd) {
  while (!stopping_.load()) {
    std::uint8_t header[4];
    if (!read_all(fd, header, 4)) break;
    std::size_t n = std::size_t{header[0]} | (std::size_t{header[1]} << 8) |
                    (std::size_t{header[2]} << 16) |
                    (std::size_t{header[3]} << 24);
    if (n > kMaxFrame) {
      SDVM_WARN("tcp") << "oversized frame (" << n << " bytes), dropping peer";
      break;
    }
    std::vector<std::byte> payload(n);
    if (!read_all(fd, payload.data(), n)) break;
    if (receiver_ && !stopping_.load()) receiver_(std::move(payload));
  }
  ::close(fd);
}

Result<std::shared_ptr<TcpTransport::Connection>> TcpTransport::connection_to(
    const std::string& to) {
  {
    std::lock_guard lock(mu_);
    if (auto it = outgoing_.find(to); it != outgoing_.end()) {
      return it->second;
    }
  }
  auto sa = parse_address(to);
  if (!sa.is_ok()) return sa.status();

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::error(ErrorCode::kInternal,
                         std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa.value()),
                sizeof(sockaddr_in)) != 0) {
    ::close(fd);
    return Status::error(ErrorCode::kUnavailable,
                         "connect " + to + ": " + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  {
    std::lock_guard lock(mu_);
    // Lost a race with another sender? Use theirs, drop ours.
    if (auto it = outgoing_.find(to); it != outgoing_.end()) {
      ::close(fd);
      return it->second;
    }
    outgoing_[to] = conn;
    // Replies can come back on this same connection.
    reader_fds_.push_back(fd);
    reader_threads_.emplace_back([this, fd] { read_loop(fd); });
  }
  return conn;
}

Status TcpTransport::send(const std::string& to, std::vector<std::byte> bytes) {
  if (bytes.size() > kMaxFrame) {
    return Status::error(ErrorCode::kInvalidArgument, "frame too large");
  }
  auto conn = connection_to(to);
  if (!conn.is_ok()) return conn.status();

  std::uint8_t header[4] = {
      static_cast<std::uint8_t>(bytes.size()),
      static_cast<std::uint8_t>(bytes.size() >> 8),
      static_cast<std::uint8_t>(bytes.size() >> 16),
      static_cast<std::uint8_t>(bytes.size() >> 24),
  };
  std::vector<std::byte> framed(4 + bytes.size());
  std::memcpy(framed.data(), header, 4);
  std::memcpy(framed.data() + 4, bytes.data(), bytes.size());

  Status st = write_all(conn.value()->fd, framed.data(), framed.size(),
                        conn.value()->write_mu);
  if (!st.is_ok()) {
    // Connection went bad: forget it so the next send reconnects.
    std::lock_guard lock(mu_);
    auto it = outgoing_.find(to);
    if (it != outgoing_.end() && it->second == conn.value()) {
      outgoing_.erase(it);
    }
  }
  return st;
}

void TcpTransport::close() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;

  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  {
    std::lock_guard lock(mu_);
    // Wake every reader thread, inbound and outbound alike.
    for (int fd : reader_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> readers;
  {
    std::lock_guard lock(mu_);
    readers.swap(reader_threads_);
  }
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
}

}  // namespace sdvm::net
