#include "net/faulty.hpp"

#include <chrono>

#include "common/log.hpp"

namespace sdvm::net {

namespace {

Nanos now_nanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// base ∘ peer ∘ kind: independent drop events, additive delay, sticky
/// sever.
FaultRule combine(const FaultRule& a, const FaultRule& b) {
  FaultRule r;
  r.drop = 1.0 - (1.0 - a.drop) * (1.0 - b.drop);
  r.delay = a.delay + b.delay;
  r.delay_jitter = a.delay_jitter + b.delay_jitter;
  r.sever = a.sever || b.sever;
  return r;
}

}  // namespace

int classify_sdvm_frame(std::span<const std::byte> frame) {
  constexpr std::size_t kTypeOffset = 1 + 1 + 4 + 4 + 1 + 1;
  if (frame.size() < kTypeOffset + 2) return -1;
  if (static_cast<std::uint8_t>(frame[1]) != 0) return -1;  // sealed body
  return static_cast<int>(static_cast<std::uint8_t>(frame[kTypeOffset]) |
                          (static_cast<std::uint8_t>(frame[kTypeOffset + 1])
                           << 8));
}

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 Options options)
    : inner_(std::move(inner)),
      classifier_(options.classifier ? std::move(options.classifier)
                                     : classify_sdvm_frame),
      base_(options.base),
      rng_(options.seed) {
  delayer_ = std::thread([this] { delayer_loop(); });
}

FaultyTransport::~FaultyTransport() { close(); }

std::string FaultyTransport::local_address() const {
  return inner_->local_address();
}

FaultyTransport::Verdict FaultyTransport::apply_rules(
    const std::string& to, std::vector<std::byte>& bytes) {
  FaultRule rule = base_;
  if (auto it = peer_rules_.find(to); it != peer_rules_.end()) {
    rule = combine(rule, it->second);
  }
  if (classifier_) {
    int kind = classifier_(bytes);
    if (auto it = kind_rules_.find(kind); it != kind_rules_.end()) {
      rule = combine(rule, it->second);
    }
  }
  if (rule.sever) {
    ++stats_.severed;
    return Verdict::kSevered;
  }
  if (rule.drop > 0.0 && rng_.uniform() < rule.drop) {
    // Network loss is silent: the frame vanishes, the caller sees ok.
    ++stats_.dropped;
    return Verdict::kDropped;
  }
  Nanos extra = rule.delay;
  if (rule.delay_jitter > 0) {
    extra += static_cast<Nanos>(
        rng_.below(static_cast<std::uint64_t>(rule.delay_jitter)));
  }
  if (extra > 0) {
    ++stats_.delayed;
    delayed_.push(
        Delayed{now_nanos() + extra, ++delayed_seq_, to, std::move(bytes)});
    cv_.notify_all();
    return Verdict::kDelayed;
  }
  ++stats_.forwarded;
  return Verdict::kForward;
}

Status FaultyTransport::send(const std::string& to,
                             std::vector<std::byte> bytes) {
  {
    std::lock_guard lk(mu_);
    if (stop_) {
      return Status::error(ErrorCode::kUnavailable, "transport closed");
    }
    switch (apply_rules(to, bytes)) {
      case Verdict::kSevered:
        return Status::error(ErrorCode::kUnavailable,
                             "link to " + to + " severed (fault injection)");
      case Verdict::kDropped:
      case Verdict::kDelayed:
        return Status::ok();
      case Verdict::kForward:
        break;
    }
  }
  return inner_->send(to, std::move(bytes));
}

Status FaultyTransport::send_batch(const std::string& to,
                                   std::vector<Frame> frames) {
  Status first = Status::ok();
  std::vector<Frame> survivors;
  {
    std::lock_guard lk(mu_);
    if (stop_) {
      return Status::error(ErrorCode::kUnavailable, "transport closed");
    }
    survivors.reserve(frames.size());
    for (auto& f : frames) {
      switch (apply_rules(to, f)) {
        case Verdict::kSevered:
          if (first.is_ok()) {
            first = Status::error(
                ErrorCode::kUnavailable,
                "link to " + to + " severed (fault injection)");
          }
          break;
        case Verdict::kDropped:
        case Verdict::kDelayed:
          break;
        case Verdict::kForward:
          survivors.push_back(std::move(f));
          break;
      }
    }
  }
  if (!survivors.empty()) {
    Status st = inner_->send_batch(to, std::move(survivors));
    if (!st.is_ok() && first.is_ok()) first = st;
  }
  return first;
}

void FaultyTransport::flush(const std::string& to) { inner_->flush(to); }

void FaultyTransport::delayer_loop() {
  std::unique_lock lk(mu_);
  while (!stop_) {
    if (delayed_.empty()) {
      cv_.wait(lk, [&] { return stop_ || !delayed_.empty(); });
      continue;
    }
    Nanos due = delayed_.top().due;
    Nanos now = now_nanos();
    if (now < due) {
      cv_.wait_for(lk, std::chrono::nanoseconds(due - now));
      continue;
    }
    Delayed d = std::move(const_cast<Delayed&>(delayed_.top()));
    delayed_.pop();
    lk.unlock();
    Status st = inner_->send(d.to, std::move(d.bytes));
    if (!st.is_ok()) {
      SDVM_DEBUG("faulty") << "delayed send to " << d.to
                           << " failed: " << st.to_string();
    }
    lk.lock();
  }
}

void FaultyTransport::close() {
  {
    std::lock_guard lk(mu_);
    if (stop_) return;
    stop_ = true;
    cv_.notify_all();
  }
  if (delayer_.joinable()) delayer_.join();
  inner_->close();
}

void FaultyTransport::set_peer_rule(const std::string& to, FaultRule rule) {
  std::lock_guard lk(mu_);
  peer_rules_[to] = rule;
}

void FaultyTransport::set_kind_rule(int kind, FaultRule rule) {
  std::lock_guard lk(mu_);
  kind_rules_[kind] = rule;
}

void FaultyTransport::sever(const std::string& to, bool severed) {
  std::lock_guard lk(mu_);
  peer_rules_[to].sever = severed;
}

void FaultyTransport::clear_rules() {
  std::lock_guard lk(mu_);
  peer_rules_.clear();
  kind_rules_.clear();
  base_ = FaultRule{};
}

FaultyTransport::Stats FaultyTransport::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

}  // namespace sdvm::net
