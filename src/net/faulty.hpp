// FaultyTransport: a seeded fault-injection decorator over any Transport.
// The PR-2 chaos harness proves the runtime's invariants against the
// deterministic SimCluster; this decorator brings the same fault vocabulary
// (drop / delay / sever, per peer and per message kind) to the *real* TCP
// deployment, so multi-process and multi-thread TCP nodes can be driven
// through the identical failure scenarios.
//
//   * drop   — the send is swallowed silently (network loss: the caller
//              still sees Status::ok, exactly like a lost UDP datagram);
//   * delay  — delivery is deferred by a fixed latency plus uniform jitter
//              (enough jitter REORDERS frames, the paper's UDP experience);
//   * sever  — sends fail immediately with kUnavailable (a cut link).
//
// All randomness comes from one seeded generator, so a fault run is
// replayable given (seed, send sequence).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/transport.hpp"

namespace sdvm::net {

/// One fault prescription. Rules combine (base ∘ peer ∘ kind): drop
/// probabilities compose independently, delays add, sever is sticky.
struct FaultRule {
  double drop = 0.0;       // probability in [0,1) that a send vanishes
  Nanos delay = 0;         // fixed extra one-way latency
  Nanos delay_jitter = 0;  // uniform extra delay in [0, delay_jitter)
  bool sever = false;      // sends fail with kUnavailable
};

/// Classifies a wire frame into an application "message kind" so rules can
/// target e.g. only heartbeats. Returns -1 for "unclassifiable".
using FrameClassifier = std::function<int(std::span<const std::byte>)>;

/// Default classifier for the SDVM wire layout
/// [version u8 | flags u8 | src u32 | dst u32 | src_mgr u8 | dst_mgr u8 |
///  type u16 | ...]: returns the message type, or -1 when the frame is
/// sealed (encrypted) or too short. Kept in lockstep with
/// SecurityManager::protect / SdMessage::serialize_body.
[[nodiscard]] int classify_sdvm_frame(std::span<const std::byte> frame);

class FaultyTransport final : public Transport {
 public:
  struct Options {
    std::uint64_t seed = 1;      // drives drop decisions and delay jitter
    FaultRule base;              // applied to every send
    FrameClassifier classifier;  // defaults to classify_sdvm_frame
  };

  struct Stats {
    std::uint64_t dropped = 0;
    std::uint64_t delayed = 0;
    std::uint64_t severed = 0;
    std::uint64_t forwarded = 0;  // reached the inner transport directly
  };

  FaultyTransport(std::unique_ptr<Transport> inner, Options options);
  ~FaultyTransport() override;
  FaultyTransport(const FaultyTransport&) = delete;
  FaultyTransport& operator=(const FaultyTransport&) = delete;

  [[nodiscard]] std::string local_address() const override;
  Status send(const std::string& to, std::vector<std::byte> bytes) override;
  /// Applies the fault rules to every frame of the burst individually —
  /// the RNG consumes decisions in frame order, exactly as if each frame
  /// had been sent alone — then forwards the survivors as one batch.
  Status send_batch(const std::string& to, std::vector<Frame> frames) override;
  /// Forwards to the inner transport (delayed frames flush when due).
  void flush(const std::string& to) override;
  void close() override;

  // --- rule surface (thread-safe; effective for subsequent sends) --------
  void set_peer_rule(const std::string& to, FaultRule rule);
  void set_kind_rule(int kind, FaultRule rule);
  /// Convenience: cut / restore the link to one peer.
  void sever(const std::string& to, bool severed);
  void clear_rules();

  [[nodiscard]] Stats stats() const;
  /// The wrapped transport (e.g. to read TcpTransport::stats()).
  [[nodiscard]] Transport* inner() { return inner_.get(); }

 private:
  /// Per-frame fault decision shared by send() and send_batch().
  enum class Verdict { kForward, kDropped, kDelayed, kSevered };
  /// Requires mu_ held. A kDelayed verdict has already scheduled the frame
  /// (bytes consumed); all other verdicts leave `bytes` untouched.
  Verdict apply_rules(const std::string& to, std::vector<std::byte>& bytes);

  void delayer_loop();

  std::unique_ptr<Transport> inner_;
  FrameClassifier classifier_;
  mutable std::mutex mu_;
  FaultRule base_;
  std::map<std::string, FaultRule> peer_rules_;
  std::map<int, FaultRule> kind_rules_;
  Xoshiro256 rng_;
  Stats stats_;

  struct Delayed {
    Nanos due;
    std::uint64_t seq;
    std::string to;
    std::vector<std::byte> bytes;
    bool operator>(const Delayed& o) const {
      return std::tie(due, seq) > std::tie(o.due, o.seq);
    }
  };
  std::priority_queue<Delayed, std::vector<Delayed>, std::greater<>> delayed_;
  std::uint64_t delayed_seq_ = 0;
  std::condition_variable cv_;
  std::thread delayer_;
  bool stop_ = false;
};

}  // namespace sdvm::net
