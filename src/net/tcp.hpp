// TCP transport: the paper's deployment. A listener thread accepts
// connections and "spawns a new thread every time an incoming connection is
// established"; outgoing connections are cached per peer. Messages are
// length-framed (u32 little-endian) byte blobs.
//
// The paper notes TCP's connection overhead and mentions T/TCP as future
// work; we keep persistent connections per peer instead, which achieves the
// same goal (no per-message handshake) with plain TCP.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"

namespace sdvm::net {

class TcpTransport final : public Transport {
 public:
  /// Binds and listens on 127.0.0.1:port (port 0 = ephemeral). Starts the
  /// listener thread immediately.
  static Result<std::unique_ptr<TcpTransport>> listen(std::uint16_t port,
                                                      Receiver receiver);

  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  [[nodiscard]] std::string local_address() const override;
  Status send(const std::string& to, std::vector<std::byte> bytes) override;
  void close() override;

 private:
  TcpTransport(int listen_fd, std::uint16_t port, Receiver receiver);

  struct Connection {
    int fd = -1;
    std::mutex write_mu;
  };

  void accept_loop();
  void read_loop(int fd);
  void track_fd(int fd);
  Result<std::shared_ptr<Connection>> connection_to(const std::string& to);

  int listen_fd_;
  std::uint16_t port_;
  Receiver receiver_;
  std::thread accept_thread_;
  std::vector<std::thread> reader_threads_;
  std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Connection>> outgoing_;
  std::vector<int> reader_fds_;  // every fd a reader thread may block on
  std::atomic<bool> stopping_{false};
};

}  // namespace sdvm::net
