// TCP transport: the paper's deployment. ONE epoll event loop thread owns
// every socket of the daemon — the listener, all accepted (inbound)
// connections and all outgoing peer connections — so a site can hold
// hundreds of peers without hundreds of threads. Small messages are
// transparently coalesced per peer: frames accumulate in a batch buffer
// and flush on a size threshold or a deadline, leaving the host as one
// scatter-gather writev of a length-prefixed multi-frame batch.
//
// Wire format (all integers little-endian):
//   batch := [u32 body_len][u16 frame_count] body
//   body  := frame_count × ([u32 frame_len] frame_bytes)
// body_len counts the body only. body_len is validated the moment its four
// bytes arrive (oversized → counted + connection dropped), frame_count and
// the per-frame lengths when the body is parsed (mismatch → malformed).
//
// Resilience model (unchanged from the writer-thread era — the "may join
// or leave the cluster at runtime" claim has to survive real sockets):
//   * send()/send_batch() never block: frames park on a bounded per-peer
//     queue the event loop drains;
//   * connects are non-blocking with a configurable timeout; failures are
//     retried with exponential backoff + deterministic jitter;
//   * a broken connection (EPIPE/ECONNRESET, peer restart) reconnects
//     automatically; frames stay queued until every byte of theirs hit the
//     socket, so a frame is re-sent after a reconnect, never silently lost
//     mid-write;
//   * once the retry budget for one outage is exhausted the peer is
//     declared unreachable: queued frames are dropped (counted), an
//     optional hook surfaces the verdict to the runtime (the failure
//     detector), and sends fast-fail with kUnavailable until a cooldown
//     elapses.
//
// fd ownership is trivial by construction: every fd (listen, eventfd,
// timerfd, inbound, outgoing) is operated on exclusively by the event-loop
// thread after construction; close() just parks a stop flag, wakes the
// loop and joins it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "net/transport.hpp"

namespace sdvm::net {

class TcpTransport final : public Transport {
 public:
  struct Options {
    /// Per connect attempt: how long to wait for the three-way handshake.
    Nanos connect_timeout = 1 * kNanosPerSecond;
    /// Failed connects + broken sends tolerated within one outage before
    /// the peer is declared unreachable.
    int max_attempts = 5;
    /// First retry delay; doubles per attempt up to backoff_max.
    Nanos backoff_base = 25'000'000;  // 25 ms
    Nanos backoff_max = 1 * kNanosPerSecond;
    /// After an unreachable verdict, sends fast-fail for this long; the
    /// next send after the cooldown re-probes the peer.
    Nanos unreachable_cooldown = 1 * kNanosPerSecond;
    /// Bound on frames parked per peer; overflow is dropped (counted).
    std::size_t max_queued_frames = 4096;
    /// Seeds the backoff jitter (deterministic per transport).
    std::uint64_t jitter_seed = 1;

    // --- coalescing policy -------------------------------------------------
    /// A parked batch flushes as soon as its payload reaches this many
    /// bytes …
    std::size_t flush_bytes = 32 * 1024;
    /// … or this many frames (also the hard per-batch frame cap on the
    /// wire; clamped to kMaxFramesPerBatch) …
    std::size_t flush_frames = 256;
    /// … or this long after the first frame of the batch was parked
    /// (0 = flush every enqueue immediately — the pre-batching wire
    /// behaviour, one writev per frame).
    Nanos flush_deadline = 200'000;  // 200 us
  };

  /// Monotonic transport-health counters (mirrored as "net.*" metrics).
  /// frames_sent/bytes_sent/batches_sent count WIRE events — bytes that
  /// actually reached the socket — not queue admissions.
  struct Stats {
    std::uint64_t frames_sent = 0;       // frames fully written to a socket
    std::uint64_t bytes_sent = 0;        // wire bytes incl. batch framing
    std::uint64_t batches_sent = 0;      // writev batches fully written
    std::uint64_t flush_deadline_hits = 0;  // flushes forced by the deadline
    std::uint64_t flush_size_hits = 0;   // flushes forced by bytes/frames
    std::uint64_t frames_dropped = 0;    // queue overflow + unreachable
    std::uint64_t send_retries = 0;      // failed attempts that were retried
    std::uint64_t reconnects = 0;        // successful re-establishments
    std::uint64_t peers_unreachable = 0; // retry budgets exhausted
    std::uint64_t frames_oversized = 0;  // inbound frame/batch over the limit
    std::uint64_t batches_malformed = 0; // inbound batch framing inconsistent
    /// frames-per-batch histogram: bucket k counts batches carrying
    /// [2^k, 2^(k+1)) frames; the last bucket is unbounded.
    static constexpr std::size_t kBatchBuckets = 9;
    std::array<std::uint64_t, kBatchBuckets> frames_per_batch{};
  };

  /// Point-in-time view of one peer's health (join-error diagnostics).
  struct PeerState {
    bool known = false;
    bool unreachable = false;
    int last_errno = 0;     // errno of the last failed connect/send
    std::size_t queued = 0;
  };

  /// Hard wire-format cap on frames per batch (sender clamps, receiver
  /// rejects beyond it).
  static constexpr std::size_t kMaxFramesPerBatch = 1024;
  /// Internal threads the transport runs — the single event loop. Pinned
  /// by a test: 100+ peers must not change this.
  static constexpr int kNetThreads = 1;

  /// Invoked (from the event-loop thread, no locks held) when a peer's
  /// retry budget is exhausted — the transport-level failure verdict.
  using UnreachableHook = std::function<void(const std::string& address)>;

  /// Binds and listens on 127.0.0.1:port (port 0 = ephemeral). Starts the
  /// event-loop thread immediately.
  static Result<std::unique_ptr<TcpTransport>> listen(std::uint16_t port,
                                                      Receiver receiver,
                                                      Options options);
  static Result<std::unique_ptr<TcpTransport>> listen(std::uint16_t port,
                                                      Receiver receiver);

  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  [[nodiscard]] std::string local_address() const override;

  /// Never blocks: validates, parks the frame on the peer's batch buffer
  /// and returns. kInvalidArgument = bad address/frame, kUnavailable =
  /// peer currently unreachable, kResourceExhausted = queue full.
  Status send(const std::string& to, std::vector<std::byte> bytes) override;

  /// Parks a whole burst under one lock/wakeup. Per-frame admission rules
  /// (overflow counting) still apply; the first failure's status is
  /// returned, later frames are still attempted.
  Status send_batch(const std::string& to, std::vector<Frame> frames) override;

  /// Ships everything parked for `to` now, ahead of the size/deadline
  /// flush.
  void flush(const std::string& to) override;

  void close() override;

  /// Must be set before traffic flows (not thread-safe against send).
  void set_unreachable_hook(UnreachableHook hook) { hook_ = std::move(hook); }

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] PeerState peer_state(const std::string& to) const;
  /// Clears an unreachable verdict so the next send reconnects immediately
  /// (used when the runtime knows the peer restarted).
  void reset_peer(const std::string& to);

 private:
  TcpTransport(int listen_fd, std::uint16_t port, Receiver receiver,
               Options options);

  /// One outgoing peer: queue + batching state (guarded by mu_) and
  /// connection state (event-loop private, but mutated under mu_ too so
  /// peer_state() stays exact).
  struct Peer {
    explicit Peer(std::string a) : addr(std::move(a)) {}
    const std::string addr;

    // Parked frames. Frames leave the queue only when all their bytes hit
    // the socket; in-flight means "serialized into the current batch".
    std::deque<Frame> queue;
    std::size_t queued_bytes = 0;     // payload bytes parked (excl. framing)
    Nanos batch_started = 0;          // when the current accumulation began
    bool force_flush = false;         // flush() requested

    // In-flight batch: the first inflight_frames of `queue`, fixed once the
    // header is composed. sent_off counts bytes of (header + body) already
    // written.
    std::size_t inflight_frames = 0;
    std::size_t inflight_body = 0;    // body_len of the in-flight batch
    std::size_t sent_off = 0;
    std::array<std::uint8_t, 6> header{};

    // Connection state machine.
    enum class Conn : std::uint8_t { kIdle, kConnecting, kConnected };
    Conn conn = Conn::kIdle;
    int fd = -1;
    std::uint32_t epoll_mask = 0;     // currently registered interest
    Nanos connect_deadline = 0;
    Nanos retry_at = 0;               // backoff: no reconnect before this
    int attempts = 0;                 // failures in the current outage
    int last_errno = 0;
    bool unreachable = false;
    Nanos unreachable_at = 0;
    bool ever_connected = false;
    std::uint64_t jitter_state = 0;
  };

  /// One accepted inbound connection with its stream-reassembly state.
  struct Inbound {
    int fd = -1;
    std::vector<std::byte> buf;       // unparsed stream bytes
    std::size_t off = 0;              // parse cursor into buf
  };

  /// epoll_event.data.ptr target. Peers and inbounds own their record.
  struct FdRecord {
    enum class Kind : std::uint8_t { kListen, kWake, kTimer, kInbound, kPeer };
    Kind kind;
    Peer* peer = nullptr;
    Inbound* inbound = nullptr;
  };

  void loop();
  void service_peer(Peer& peer, Nanos now, std::vector<std::string>* verdicts);
  void try_write(Peer& peer, Nanos now, std::vector<std::string>* verdicts);
  void start_connect(Peer& peer, Nanos now, std::vector<std::string>* verdicts);
  void on_connect_event(Peer& peer, Nanos now,
                        std::vector<std::string>* verdicts);
  void connection_broken(Peer& peer, int err, Nanos now,
                         std::vector<std::string>* verdicts);
  void declare_unreachable(Peer& peer, std::vector<std::string>* verdicts);
  void drop_connection(Peer& peer);
  void compose_batch(Peer& peer, Nanos now);
  void update_peer_interest(Peer& peer);
  void accept_ready(Nanos now);
  void inbound_ready(Inbound* in, std::vector<Frame>* delivered);
  void close_inbound(Inbound* in);
  [[nodiscard]] Nanos next_deadline(Nanos now) const;
  void arm_timer(Nanos now);
  void wake_loop();
  [[nodiscard]] Nanos backoff_for(Peer& peer);

  static Nanos now_nanos();

  const Options options_;
  int listen_fd_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int timer_fd_ = -1;
  std::uint16_t port_;
  Receiver receiver_;
  UnreachableHook hook_;
  std::thread loop_thread_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mu_;  // guards peers_, per-Peer state, stats_
  std::unordered_map<std::string, std::unique_ptr<Peer>> peers_;
  bool loop_sleeping_ = false;        // loop is (about to be) in epoll_wait

  // Loop-thread-only state: inbound connections and the epoll records of
  // every registered fd (freed when the fd deregisters).
  std::unordered_map<int, std::unique_ptr<Inbound>> inbounds_;
  std::unordered_map<Peer*, std::unique_ptr<FdRecord>> peer_recs_;
  std::unordered_map<Inbound*, std::unique_ptr<FdRecord>> inbound_recs_;

  Stats stats_;                       // guarded by mu_
  FdRecord listen_rec_{FdRecord::Kind::kListen};
  FdRecord wake_rec_{FdRecord::Kind::kWake};
  FdRecord timer_rec_{FdRecord::Kind::kTimer};
};

}  // namespace sdvm::net
