// TCP transport: the paper's deployment. A listener thread accepts
// connections and "spawns a new thread every time an incoming connection is
// established"; outgoing connections are cached per peer. Messages are
// length-framed (u32 little-endian) byte blobs.
//
// Resilience model (the "may join or leave the cluster at runtime" claim has
// to survive real sockets, not just the simulator):
//   * every peer gets an outbound queue drained by a dedicated writer
//     thread, so send() never blocks on connect or a slow receiver;
//   * connects are non-blocking with a configurable timeout; failures are
//     retried with exponential backoff + deterministic jitter;
//   * a broken connection (EPIPE/ECONNRESET, peer restart) reconnects
//     automatically, keeping the unsent frame at the queue head;
//   * once the retry budget for one outage is exhausted the peer is declared
//     unreachable: queued frames are dropped (counted), an optional hook
//     surfaces the verdict to the runtime (the failure detector), and sends
//     fast-fail with kUnavailable until a cooldown elapses.
//
// The paper notes TCP's connection overhead and mentions T/TCP as future
// work; we keep persistent connections per peer instead, which achieves the
// same goal (no per-message handshake) with plain TCP.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "net/transport.hpp"

namespace sdvm::net {

class TcpTransport final : public Transport {
 public:
  struct Options {
    /// Per connect attempt: how long to wait for the three-way handshake.
    Nanos connect_timeout = 1 * kNanosPerSecond;
    /// Failed connects + broken sends tolerated within one outage before
    /// the peer is declared unreachable.
    int max_attempts = 5;
    /// First retry delay; doubles per attempt up to backoff_max.
    Nanos backoff_base = 25'000'000;  // 25 ms
    Nanos backoff_max = 1 * kNanosPerSecond;
    /// After an unreachable verdict, sends fast-fail for this long; the
    /// next send after the cooldown re-probes the peer.
    Nanos unreachable_cooldown = 1 * kNanosPerSecond;
    /// Bound on frames parked per peer; overflow is dropped (counted).
    std::size_t max_queued_frames = 4096;
    /// Seeds the backoff jitter (deterministic per transport).
    std::uint64_t jitter_seed = 1;
  };

  /// Monotonic transport-health counters (mirrored as "net.*" metrics).
  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t frames_dropped = 0;    // queue overflow + unreachable
    std::uint64_t send_retries = 0;      // failed attempts that were retried
    std::uint64_t reconnects = 0;        // successful re-establishments
    std::uint64_t peers_unreachable = 0; // retry budgets exhausted
    std::uint64_t frames_oversized = 0;  // inbound frames over the limit
  };

  /// Point-in-time view of one peer's health (join-error diagnostics).
  struct PeerState {
    bool known = false;
    bool unreachable = false;
    int last_errno = 0;     // errno of the last failed connect/send
    std::size_t queued = 0;
  };

  /// Invoked (from a writer thread, no locks held) when a peer's retry
  /// budget is exhausted — the transport-level failure verdict.
  using UnreachableHook = std::function<void(const std::string& address)>;

  /// Binds and listens on 127.0.0.1:port (port 0 = ephemeral). Starts the
  /// listener thread immediately.
  static Result<std::unique_ptr<TcpTransport>> listen(std::uint16_t port,
                                                      Receiver receiver,
                                                      Options options);
  static Result<std::unique_ptr<TcpTransport>> listen(std::uint16_t port,
                                                      Receiver receiver);

  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  [[nodiscard]] std::string local_address() const override;

  /// Never blocks: validates, enqueues on the peer's outbound queue and
  /// returns. kInvalidArgument = bad address/frame, kUnavailable = peer
  /// currently unreachable, kResourceExhausted = queue full.
  Status send(const std::string& to, std::vector<std::byte> bytes) override;

  void close() override;

  /// Must be set before traffic flows (not thread-safe against send).
  void set_unreachable_hook(UnreachableHook hook) { hook_ = std::move(hook); }

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] PeerState peer_state(const std::string& to) const;
  /// Clears an unreachable verdict so the next send reconnects immediately
  /// (used when the runtime knows the peer restarted).
  void reset_peer(const std::string& to);

 private:
  TcpTransport(int listen_fd, std::uint16_t port, Receiver receiver,
               Options options);

  struct Peer {
    explicit Peer(std::string a) : addr(std::move(a)) {}
    const std::string addr;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<std::byte>> queue;  // framed (header + payload)
    int fd = -1;                // live outgoing socket, -1 = disconnected
    int attempts = 0;           // failures in the current outage
    int last_errno = 0;
    bool unreachable = false;
    Nanos unreachable_at = 0;   // steady-clock nanos of the verdict
    bool ever_connected = false;
    bool stop = false;
    std::uint64_t jitter_state = 0;
    std::thread writer;
  };

  // fd ownership: writers own their outgoing fds (created by try_connect,
  // closed by the writer under peer.mu); readers own accepted fds (closed
  // under mu_ as they deregister). close() only ever shutdown()s, always
  // under the same lock as the owner's transitions — no fd is closed while
  // another thread can still act on it.
  void accept_loop();
  void read_loop(int fd);
  void writer_loop(Peer& peer);
  /// Blocking-with-timeout connect; returns fd or -1 (errno in *err).
  int try_connect(const std::string& addr, int* err);
  /// Under peer.mu (via lk): drops the queue, records the verdict, fires
  /// the hook with the lock released.
  void declare_unreachable(Peer& peer, std::unique_lock<std::mutex>& lk);

  static Nanos now_nanos();

  const Options options_;
  int listen_fd_;
  std::uint16_t port_;
  Receiver receiver_;
  UnreachableHook hook_;
  std::thread accept_thread_;
  std::vector<std::thread> reader_threads_;
  mutable std::mutex mu_;  // guards peers_, reader_threads_, reader_fds_
  std::unordered_map<std::string, std::shared_ptr<Peer>> peers_;
  std::vector<int> reader_fds_;  // live accepted fds readers may block on
  std::atomic<bool> stopping_{false};

  // Counters live on transport threads outside the site lock, so they are
  // atomics rather than metrics::Counter slots.
  struct AtomicStats {
    std::atomic<std::uint64_t> frames_sent{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> frames_dropped{0};
    std::atomic<std::uint64_t> send_retries{0};
    std::atomic<std::uint64_t> reconnects{0};
    std::atomic<std::uint64_t> peers_unreachable{0};
    std::atomic<std::uint64_t> frames_oversized{0};
  };
  AtomicStats stats_;
};

}  // namespace sdvm::net
