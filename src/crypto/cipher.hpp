// Authenticated link cipher used by the security manager.
//
// Scheme: per-cluster master key = HMAC(password, "sdvm-master"); per-pair
// session keys = HMAC(master, min(a,b) || max(a,b)). Each sealed message
// carries a fresh 96-bit nonce; payload is ChaCha20-encrypted and
// authenticated with truncated HMAC-SHA256 (encrypt-then-MAC). This mirrors
// the paper's security manager, where a start password supplied by hand
// bootstraps the encrypted channel.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"

namespace sdvm::crypto {

/// Derives the cluster master key from the shared start password.
[[nodiscard]] ChaCha20::Key derive_master_key(std::string_view password);

/// Derives the symmetric session key for the (unordered) site pair {a, b}.
[[nodiscard]] ChaCha20::Key derive_pair_key(const ChaCha20::Key& master,
                                            SiteId a, SiteId b);

/// Seals plaintext: [nonce(12) | ciphertext | mac(16)].
[[nodiscard]] std::vector<std::byte> seal(const ChaCha20::Key& key,
                                          std::uint64_t nonce_seed,
                                          std::span<const std::byte> plain);

/// Opens a sealed blob; fails with kCorrupt on MAC mismatch or truncation.
[[nodiscard]] Result<std::vector<std::byte>> open(
    const ChaCha20::Key& key, std::span<const std::byte> sealed);

}  // namespace sdvm::crypto
