// ChaCha20 stream cipher (RFC 8439) for the security manager's link
// encryption. Encryption and decryption are the same XOR-keystream
// operation. Validated against the RFC test vectors.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sdvm::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  using Key = std::array<std::uint8_t, kKeySize>;
  using Nonce = std::array<std::uint8_t, kNonceSize>;

  /// XORs the keystream (key, nonce, starting at block `counter`) into
  /// `data` in place.
  static void apply(const Key& key, const Nonce& nonce, std::uint32_t counter,
                    std::span<std::byte> data);

  /// Raw block function, exposed for the RFC 8439 block test vector.
  static std::array<std::uint8_t, 64> block(const Key& key,
                                            const Nonce& nonce,
                                            std::uint32_t counter);
};

}  // namespace sdvm::crypto
