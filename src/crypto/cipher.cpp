#include "crypto/cipher.hpp"

#include <atomic>
#include <cstring>

namespace sdvm::crypto {

namespace {

constexpr std::size_t kMacSize = 16;

std::span<const std::byte> as_bytes(const std::uint8_t* p, std::size_t n) {
  return {reinterpret_cast<const std::byte*>(p), n};
}

}  // namespace

ChaCha20::Key derive_master_key(std::string_view password) {
  auto digest = hmac_sha256(
      as_bytes(reinterpret_cast<const std::uint8_t*>(password.data()),
               password.size()),
      as_bytes(reinterpret_cast<const std::uint8_t*>("sdvm-master"), 11));
  ChaCha20::Key key;
  std::memcpy(key.data(), digest.data(), key.size());
  return key;
}

ChaCha20::Key derive_pair_key(const ChaCha20::Key& master, SiteId a,
                              SiteId b) {
  if (a > b) std::swap(a, b);
  std::uint8_t info[8];
  for (int i = 0; i < 4; ++i) {
    info[i] = static_cast<std::uint8_t>(a >> (8 * i));
    info[4 + i] = static_cast<std::uint8_t>(b >> (8 * i));
  }
  auto digest = hmac_sha256(as_bytes(master.data(), master.size()),
                            as_bytes(info, sizeof(info)));
  ChaCha20::Key key;
  std::memcpy(key.data(), digest.data(), key.size());
  return key;
}

std::vector<std::byte> seal(const ChaCha20::Key& key, std::uint64_t nonce_seed,
                            std::span<const std::byte> plain) {
  // Nonce: 64-bit caller-supplied unique seed + 32-bit process counter.
  // Uniqueness per key is what matters for a stream cipher.
  static std::atomic<std::uint32_t> counter{1};
  std::uint32_t c = counter.fetch_add(1, std::memory_order_relaxed);

  ChaCha20::Nonce nonce;
  for (int i = 0; i < 8; ++i) {
    nonce[i] = static_cast<std::uint8_t>(nonce_seed >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    nonce[8 + i] = static_cast<std::uint8_t>(c >> (8 * i));
  }

  std::vector<std::byte> out(ChaCha20::kNonceSize + plain.size() + kMacSize);
  std::memcpy(out.data(), nonce.data(), nonce.size());
  std::memcpy(out.data() + nonce.size(), plain.data(), plain.size());
  ChaCha20::apply(key, nonce, /*counter=*/1,
                  std::span{out.data() + nonce.size(), plain.size()});

  // MAC over nonce || ciphertext.
  auto mac = hmac_sha256(as_bytes(key.data(), key.size()),
                         std::span{out.data(), nonce.size() + plain.size()});
  std::memcpy(out.data() + nonce.size() + plain.size(), mac.data(), kMacSize);
  return out;
}

Result<std::vector<std::byte>> open(const ChaCha20::Key& key,
                                    std::span<const std::byte> sealed) {
  if (sealed.size() < ChaCha20::kNonceSize + kMacSize) {
    return Status::error(ErrorCode::kCorrupt, "sealed blob too short");
  }
  std::size_t cipher_len = sealed.size() - ChaCha20::kNonceSize - kMacSize;

  auto mac = hmac_sha256(
      as_bytes(key.data(), key.size()),
      sealed.subspan(0, ChaCha20::kNonceSize + cipher_len));
  // Constant-time compare.
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < kMacSize; ++i) {
    diff |= mac[i] ^ static_cast<std::uint8_t>(
                         sealed[ChaCha20::kNonceSize + cipher_len + i]);
  }
  if (diff != 0) {
    return Status::error(ErrorCode::kCorrupt, "MAC mismatch");
  }

  ChaCha20::Nonce nonce;
  std::memcpy(nonce.data(), sealed.data(), nonce.size());
  std::vector<std::byte> plain(sealed.begin() + ChaCha20::kNonceSize,
                               sealed.begin() +
                                   static_cast<std::ptrdiff_t>(
                                       ChaCha20::kNonceSize + cipher_len));
  ChaCha20::apply(key, nonce, /*counter=*/1, plain);
  return plain;
}

}  // namespace sdvm::crypto
