// SHA-256 (FIPS 180-4), implemented from scratch for the security manager's
// key derivation and message authentication. Validated against NIST vectors
// in tests/crypto_test.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace sdvm::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::byte> data);
  void update(std::string_view s) {
    update(std::span{reinterpret_cast<const std::byte*>(s.data()), s.size()});
  }
  [[nodiscard]] Digest finish();

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(std::span<const std::byte> data) {
    Sha256 h;
    h.update(data);
    return h.finish();
  }
  [[nodiscard]] static Digest hash(std::string_view s) {
    Sha256 h;
    h.update(s);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffered_ = 0;
};

/// HMAC-SHA256 (RFC 2104).
[[nodiscard]] Sha256::Digest hmac_sha256(std::span<const std::byte> key,
                                         std::span<const std::byte> message);

[[nodiscard]] std::string hex(std::span<const std::uint8_t> bytes);

}  // namespace sdvm::crypto
