#include "sched_graph/cdag.hpp"

#include <algorithm>
#include <deque>
#include <queue>

namespace sdvm::sched_graph {

NodeId Cdag::add_node(std::string name, std::int64_t cost) {
  nodes_.push_back(Node{std::move(name), cost, {}, {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

Status Cdag::add_dependency(NodeId from, NodeId to) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return Status::error(ErrorCode::kInvalidArgument, "node id out of range");
  }
  if (from == to) {
    return Status::error(ErrorCode::kInvalidArgument, "self-dependency");
  }
  nodes_[from].successors.push_back(to);
  nodes_[to].predecessors.push_back(from);
  return Status::ok();
}

Result<std::vector<NodeId>> Cdag::topological_order() const {
  std::vector<std::size_t> indegree(nodes_.size(), 0);
  for (const auto& n : nodes_) {
    for (NodeId s : n.successors) indegree[s]++;
  }
  std::deque<NodeId> frontier;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) frontier.push_back(i);
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!frontier.empty()) {
    NodeId n = frontier.front();
    frontier.pop_front();
    order.push_back(n);
    for (NodeId s : nodes_[n].successors) {
      if (--indegree[s] == 0) frontier.push_back(s);
    }
  }
  if (order.size() != nodes_.size()) {
    return Status::error(ErrorCode::kFailedPrecondition,
                         "graph contains a cycle");
  }
  return order;
}

std::vector<std::int64_t> Cdag::bottom_levels() const {
  auto order = topological_order();
  if (!order.is_ok()) return {};
  std::vector<std::int64_t> level(nodes_.size(), 0);
  // Process in reverse topological order: successors are final first.
  for (auto it = order.value().rbegin(); it != order.value().rend(); ++it) {
    NodeId n = *it;
    std::int64_t best = 0;
    for (NodeId s : nodes_[n].successors) {
      best = std::max(best, level[s]);
    }
    level[n] = nodes_[n].cost + best;
  }
  return level;
}

std::int64_t Cdag::critical_path_length() const {
  auto levels = bottom_levels();
  std::int64_t best = 0;
  for (auto l : levels) best = std::max(best, l);
  return best;
}

std::vector<NodeId> Cdag::critical_path() const {
  auto levels = bottom_levels();
  if (levels.empty()) return {};
  // Start at the source with the highest bottom level, then repeatedly
  // follow the successor with the highest level.
  NodeId current = 0;
  std::int64_t best = -1;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].predecessors.empty() && levels[i] > best) {
      best = levels[i];
      current = i;
    }
  }
  if (best < 0) return {};
  std::vector<NodeId> path{current};
  while (!nodes_[current].successors.empty()) {
    NodeId next = nodes_[current].successors.front();
    for (NodeId s : nodes_[current].successors) {
      if (levels[s] > levels[next]) next = s;
    }
    path.push_back(next);
    current = next;
  }
  return path;
}

std::vector<int> Cdag::priorities(int max_priority) const {
  auto levels = bottom_levels();
  std::vector<int> out(nodes_.size(), 0);
  if (levels.empty()) return out;
  std::int64_t top = *std::max_element(levels.begin(), levels.end());
  if (top <= 0) return out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out[i] = static_cast<int>(levels[i] * max_priority / top);
  }
  return out;
}

std::int64_t Cdag::list_schedule_makespan(int sites) const {
  auto order = topological_order();
  if (!order.is_ok() || sites <= 0) return -1;
  auto levels = bottom_levels();

  std::vector<std::int64_t> node_finish(nodes_.size(), 0);
  std::vector<std::size_t> pending_preds(nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    pending_preds[i] = nodes_[i].predecessors.size();
  }

  // Ready list ordered by bottom level (critical path first).
  auto cmp = [&](NodeId a, NodeId b) { return levels[a] < levels[b]; };
  std::priority_queue<NodeId, std::vector<NodeId>, decltype(cmp)> ready(cmp);
  // Earliest time each ready node may start (max of predecessors' finish).
  std::vector<std::int64_t> earliest(nodes_.size(), 0);
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (pending_preds[i] == 0) ready.push(i);
  }

  std::vector<std::int64_t> site_free(static_cast<std::size_t>(sites), 0);
  std::int64_t makespan = 0;
  while (!ready.empty()) {
    NodeId n = ready.top();
    ready.pop();
    auto it = std::min_element(site_free.begin(), site_free.end());
    std::int64_t start = std::max(*it, earliest[n]);
    std::int64_t finish = start + nodes_[n].cost;
    *it = finish;
    node_finish[n] = finish;
    makespan = std::max(makespan, finish);
    for (NodeId s : nodes_[n].successors) {
      earliest[s] = std::max(earliest[s], finish);
      if (--pending_preds[s] == 0) ready.push(s);
    }
  }
  return makespan;
}

}  // namespace sdvm::sched_graph
