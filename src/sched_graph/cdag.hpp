// CDAG — Controlflow Dataflow Allocation Graph (Klauer et al., PDP 2002;
// paper §3.3). Static task-graph analysis used to derive scheduling hints:
// "microthreads in the critical path of the application can be identified,
// which are then executed with higher priority", and "it is possible to
// attach scheduling hints to microframes using information from the CDAG".
//
// This module is deliberately offline: applications (or a compiler) build
// the CDAG, derive per-microthread priorities, and pass them to spawn().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace sdvm::sched_graph {

using NodeId = std::uint32_t;

class Cdag {
 public:
  /// Adds a task node with an estimated execution cost (any consistent
  /// unit — cycles, nanos).
  NodeId add_node(std::string name, std::int64_t cost);

  /// `from`'s result feeds `to` (a dataflow edge: `to` cannot fire before
  /// `from` completed).
  Status add_dependency(NodeId from, NodeId to);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const std::string& name(NodeId id) const {
    return nodes_[id].name;
  }
  [[nodiscard]] std::int64_t cost(NodeId id) const { return nodes_[id].cost; }

  /// Kahn topological order; fails with kFailedPrecondition on a cycle
  /// (a cyclic "DAG" is a programming error worth catching loudly).
  [[nodiscard]] Result<std::vector<NodeId>> topological_order() const;

  /// Bottom level per node: cost(n) + max over successors — the classic
  /// critical-path metric. Empty on a cyclic graph.
  [[nodiscard]] std::vector<std::int64_t> bottom_levels() const;

  /// Length of the whole critical path (max bottom level).
  [[nodiscard]] std::int64_t critical_path_length() const;

  /// The node sequence of one critical path, source to sink.
  [[nodiscard]] std::vector<NodeId> critical_path() const;

  /// Scheduling hints: per-node priority scaled to [0, max_priority],
  /// proportional to bottom level (critical-path nodes get the highest).
  [[nodiscard]] std::vector<int> priorities(int max_priority = 100) const;

  /// Ideal parallel makespan on `sites` identical sites with zero
  /// communication cost (greedy list scheduling by bottom level) — a lower
  /// bound useful for judging measured schedules.
  [[nodiscard]] std::int64_t list_schedule_makespan(int sites) const;

 private:
  struct Node {
    std::string name;
    std::int64_t cost;
    std::vector<NodeId> successors;
    std::vector<NodeId> predecessors;
  };
  std::vector<Node> nodes_;
};

}  // namespace sdvm::sched_graph
