#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <mutex>

namespace sdvm {

namespace {
LogLevel initial_level() {
  const char* env = std::getenv("SDVM_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  std::string v(env);
  if (v == "trace") return LogLevel::kTrace;
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}
}  // namespace

std::atomic<LogLevel> Logger::global_level_{initial_level()};

namespace {
const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

void Logger::write(LogLevel lvl, const std::string& tag,
                   const std::string& message) {
  std::lock_guard lock(log_mutex());
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(lvl), tag.c_str(),
               message.c_str());
}

}  // namespace sdvm
