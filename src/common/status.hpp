// Lightweight Status / Result<T> types. SDVM is a long-running daemon:
// remote failures (unknown site, missing code, decode errors) are expected
// events and must be values, not exceptions, on manager boundaries.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace sdvm {

enum class ErrorCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kUnavailable,       // site unreachable / signed off
  kCorrupt,           // decode or integrity failure
  kUnsupported,       // e.g. no binary and no source for a platform
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
};

[[nodiscard]] inline const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk:                 return "ok";
    case ErrorCode::kNotFound:           return "not-found";
    case ErrorCode::kAlreadyExists:      return "already-exists";
    case ErrorCode::kInvalidArgument:    return "invalid-argument";
    case ErrorCode::kUnavailable:        return "unavailable";
    case ErrorCode::kCorrupt:            return "corrupt";
    case ErrorCode::kUnsupported:        return "unsupported";
    case ErrorCode::kResourceExhausted:  return "resource-exhausted";
    case ErrorCode::kFailedPrecondition: return "failed-precondition";
    case ErrorCode::kInternal:           return "internal";
  }
  return "unknown";
}

class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }
  static Status error(ErrorCode code, std::string msg) {
    return Status{code, std::move(msg)};
  }

  [[nodiscard]] bool is_ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    return is_ok() ? "ok"
                   : std::string(sdvm::to_string(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "ok Status carries no value");
  }

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return value_.value_or(std::move(fallback));
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::error(ErrorCode::kInternal, "empty result");
};

}  // namespace sdvm
