// Fundamental identifier types shared by every SDVM module.
//
// Terminology follows the paper (Haase/Eschmann/Waldschmidt, IPPS 2005):
// a *site* is one machine running the SDVM daemon; *microthreads* are
// run-to-completion code fragments; *microframes* hold their start
// arguments and live in the attraction memory under a global address.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace sdvm {

/// Logical site identifier, assigned by the cluster manager at sign-on.
/// Site ids are cluster-unique and never reused within a cluster lifetime.
using SiteId = std::uint32_t;

/// Sentinel for "no site".
inline constexpr SiteId kInvalidSite = 0xFFFFFFFFu;

/// Platform identifier ("linux-x86", "hpux-parisc", ...). Microthread
/// binaries are only runnable on the platform they were compiled for;
/// mismatches trigger the source-transfer + on-the-fly-compile path.
using PlatformId = std::string;

/// Program identifier: the starting site's id in the high 32 bits plus a
/// per-site counter, so ids are cluster-unique without coordination.
struct ProgramId {
  std::uint64_t value = 0;

  constexpr ProgramId() = default;
  constexpr explicit ProgramId(std::uint64_t v) : value(v) {}
  constexpr ProgramId(SiteId home, std::uint32_t counter)
      : value((std::uint64_t{home} << 32) | counter) {}

  [[nodiscard]] constexpr SiteId home_site() const {
    return static_cast<SiteId>(value >> 32);
  }
  [[nodiscard]] constexpr std::uint32_t counter() const {
    return static_cast<std::uint32_t>(value);
  }
  [[nodiscard]] constexpr bool valid() const { return value != 0; }

  friend constexpr bool operator==(ProgramId, ProgramId) = default;
  friend constexpr auto operator<=>(ProgramId, ProgramId) = default;
};

/// Index of a microthread within its program's microthread table.
using MicrothreadId = std::uint32_t;

inline constexpr MicrothreadId kInvalidMicrothread = 0xFFFFFFFFu;

/// Global memory address in the attraction memory. The paper requires the
/// address to contain "the id of the site it is created on" (the homesite),
/// so any site can locate the homesite directory responsible for the object.
struct GlobalAddress {
  std::uint64_t value = 0;

  constexpr GlobalAddress() = default;
  constexpr explicit GlobalAddress(std::uint64_t v) : value(v) {}
  constexpr GlobalAddress(SiteId home, std::uint64_t local_counter)
      : value((std::uint64_t{home} << 40) | (local_counter & kLocalMask)) {}

  static constexpr std::uint64_t kLocalMask = (std::uint64_t{1} << 40) - 1;

  [[nodiscard]] constexpr SiteId home_site() const {
    return static_cast<SiteId>(value >> 40);
  }
  [[nodiscard]] constexpr std::uint64_t local_id() const {
    return value & kLocalMask;
  }
  [[nodiscard]] constexpr bool valid() const { return value != 0; }

  friend constexpr bool operator==(GlobalAddress, GlobalAddress) = default;
  friend constexpr auto operator<=>(GlobalAddress, GlobalAddress) = default;
};

/// Microframes are global memory objects; their id is their address.
using FrameId = GlobalAddress;

/// The managers an SDVM daemon consists of (Figure 3 of the paper).
/// Every SDMessage is addressed to one manager on one site.
enum class ManagerId : std::uint8_t {
  kProcessing = 0,
  kScheduling = 1,
  kCode = 2,
  kAttractionMemory = 3,
  kIo = 4,
  kCluster = 5,
  kProgram = 6,
  kSite = 7,
  kMessage = 8,
  kSecurity = 9,
  kNetwork = 10,
  kCrash = 11,
};

[[nodiscard]] const char* to_string(ManagerId id);

/// Monotonic time in nanoseconds. Both the wall clock (threads/tcp modes)
/// and the virtual clock (sim mode) report in this unit.
using Nanos = std::int64_t;

inline constexpr Nanos kNanosPerSecond = 1'000'000'000;

}  // namespace sdvm

template <>
struct std::hash<sdvm::ProgramId> {
  std::size_t operator()(const sdvm::ProgramId& p) const noexcept {
    return std::hash<std::uint64_t>{}(p.value);
  }
};

template <>
struct std::hash<sdvm::GlobalAddress> {
  std::size_t operator()(const sdvm::GlobalAddress& a) const noexcept {
    return std::hash<std::uint64_t>{}(a.value);
  }
};
