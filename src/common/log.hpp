// Minimal leveled logger. Sites are concurrent; log lines are assembled
// off-lock and emitted with a single synchronized write so interleaved
// output stays line-atomic.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace sdvm {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static LogLevel level() {
    return global_level_.load(std::memory_order_relaxed);
  }
  static void set_level(LogLevel lvl) {
    global_level_.store(lvl, std::memory_order_relaxed);
  }
  static bool enabled(LogLevel lvl) { return lvl >= level(); }

  /// Emits one line "[LVL] tag: message" to stderr, thread-safely.
  static void write(LogLevel lvl, const std::string& tag,
                    const std::string& message);

 private:
  static std::atomic<LogLevel> global_level_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel lvl, std::string tag) : lvl_(lvl), tag_(std::move(tag)) {}
  ~LogLine() { Logger::write(lvl_, tag_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::string tag_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace sdvm

#define SDVM_LOG(lvl, tag)                      \
  if (!::sdvm::Logger::enabled(lvl)) {          \
  } else                                        \
    ::sdvm::detail::LogLine(lvl, tag)

#define SDVM_TRACE(tag) SDVM_LOG(::sdvm::LogLevel::kTrace, tag)
#define SDVM_DEBUG(tag) SDVM_LOG(::sdvm::LogLevel::kDebug, tag)
#define SDVM_INFO(tag) SDVM_LOG(::sdvm::LogLevel::kInfo, tag)
#define SDVM_WARN(tag) SDVM_LOG(::sdvm::LogLevel::kWarn, tag)
#define SDVM_ERROR(tag) SDVM_LOG(::sdvm::LogLevel::kError, tag)
