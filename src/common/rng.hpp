// Deterministic PRNG (xoshiro256**, seeded via splitmix64). Benches and
// property tests need reproducible randomness independent of libstdc++
// internals; scheduling tie-breaks and the latency jitter model use this.
#pragma once

#include <cstdint>

namespace sdvm {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5DEECE66Dull) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return (*this)() % bound; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace sdvm
