// Per-site configuration. Plain data so every layer can consume it without
// depending on the runtime. Mirrors what the paper's daemon reads from "a
// configuration file or direct input when the local site is started".
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace sdvm {

/// Local scheduling order for the executable/ready queues (§3.3: "a
/// FIFO-strategy is used momentarily for the local scheduling").
enum class LocalSchedPolicy : std::uint8_t { kFifo = 0, kLifo, kPriority };

/// Which end of the queue a site gives away when answering a help request
/// (§3.3: "a LIFO-strategy is used for the replying to help requests to
/// hide the communication latencies").
enum class HelpReplyPolicy : std::uint8_t { kLifo = 0, kFifo };

/// Logical-id allocation concepts sketched in §4 (cluster manager).
enum class IdAllocStrategy : std::uint8_t {
  kCentralContact = 0,  // single contact site hands out ids (central PoF)
  kContingent,          // id servers receive contingents of free ids
  kModulo,              // fixed number k of servers; server i emits i, i+k, ...
};

struct SiteConfig {
  /// Human-readable site name for logs and the frontend.
  std::string name = "site";

  /// Platform id; a joining site with a platform no artifact was compiled
  /// for exercises the source-transfer + on-the-fly compile path.
  PlatformId platform = "linux-x86";

  /// Relative computing speed (1.0 = paper's reference Pentium IV). Only
  /// meaningful in sim mode, where execution cost = cycles / speed.
  double speed = 1.0;

  /// Max microthreads in flight on the processing manager. The paper found
  /// "a number of about 5 microthreads run in (virtual) parallel produce
  /// good results".
  int executor_slots = 5;

  LocalSchedPolicy local_sched = LocalSchedPolicy::kFifo;
  HelpReplyPolicy help_reply = HelpReplyPolicy::kLifo;
  IdAllocStrategy id_alloc = IdAllocStrategy::kCentralContact;

  /// Encrypt inter-site traffic (security manager). Disabled for "insular"
  /// clusters in favour of a performance gain, as §4 suggests.
  bool encrypt = false;
  /// Pre-shared cluster password for key derivation ("a first contact must
  /// be made in a secure way, e.g. by supplying a start password by hand").
  std::string cluster_password = "sdvm";

  /// This site stores every microthread artifact (a "code distribution
  /// site"). The program's start site is implicitly one regardless.
  bool code_distribution_site = false;

  /// Crash management.
  bool checkpoints_enabled = false;
  Nanos checkpoint_interval = 2 * kNanosPerSecond;
  Nanos heartbeat_interval = 200'000'000;   // 200 ms
  Nanos failure_timeout = 1 * kNanosPerSecond;

  /// Durable checkpoints: directory committed epochs are persisted to
  /// (`sdvmd --state-dir`). Empty = in-memory replicas only, unless a
  /// state store is attached explicitly (the simulator does this).
  std::string state_dir;

  /// Copies of each committed checkpoint: the home site plus
  /// `replication_factor - 1` deterministically chosen replica holders.
  /// 0 = every live site holds a replica. A commit is acknowledged only
  /// after a majority of the copies persisted.
  std::uint32_t replication_factor = 2;

  /// Message drain wait before a frozen site snapshots its checkpoint
  /// shard (bounded-channel-delay assumption of coordinated checkpointing).
  Nanos checkpoint_drain = 5'000'000;  // 5 ms

  /// Help-request pacing: an idle site re-asks after this long without work.
  Nanos help_retry_interval = 2'000'000;  // 2 ms

  /// Cluster-protocol scale knobs. 0 = paper behavior: every tick
  /// heartbeats all live peers and failure-checks all of them (O(n) per
  /// site per tick — fine at paper scale, quadratic traffic at 1000
  /// sites). k > 0: heartbeat only the k ring successors by sorted live
  /// id and failure-check only the k ring predecessors (the only sites
  /// whose heartbeats we still receive).
  int heartbeat_fanout = 0;

  /// Gossip only entries changed since the last gossip round (epidemic
  /// delta propagation; receivers re-dirty what they merge), with a full
  /// anti-entropy list every 16th tick. Off = full list every tick.
  bool gossip_delta = false;

  /// TEST ONLY (exploration mutation check): a signed-off site drops
  /// in-flight messages instead of forwarding state-carrying traffic to
  /// its successor — reintroducing a recovery bug that loses relocated
  /// frames when a delivery races the sign-off. Never set outside tests.
  bool test_drop_departed_forwarding = false;

  /// TEST ONLY (exploration mutation check): on a graceful shard handoff
  /// the departing holder keeps its lease claim and directory entries and
  /// ignores superseding lease announcements — serving the shard from a
  /// stale lease alongside the real holder. The sharded-ownership
  /// invariants must detect the split authority. Never set outside tests.
  bool test_stale_lease_serve = false;

  /// Sim mode: virtual cost of one interpreted bytecode instruction at
  /// speed 1.0, and of compiling one source byte on the fly.
  Nanos sim_nanos_per_instr = 10;
  Nanos sim_nanos_per_compiled_byte = 2'000;

  /// Sim mode: base one-way message latency and per-byte cost applied by
  /// the in-process network model (overridable per link).
  Nanos net_latency = 100'000;        // 100 us, intranet-class
  Nanos net_per_byte = 10;            // ~100 MB/s
};

}  // namespace sdvm
