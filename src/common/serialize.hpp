// Byte-level serialization used for SDMessages, checkpoints and code
// artifacts. Little-endian fixed-width integers; length-prefixed strings
// and blobs. The reader is bounds-checked and never reads past the end —
// malformed network input must fail loudly, not corrupt a site.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/types.hpp"

namespace sdvm {

/// Error thrown when deserializing malformed input.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only byte sink.
class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(std::byte{v}); }

  template <typename T>
    requires std::is_integral_v<T>
  void fixed(T v) {
    auto u = static_cast<std::make_unsigned_t<T>>(v);
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(std::byte{static_cast<std::uint8_t>(u >> (8 * i))});
    }
  }

  void u16(std::uint16_t v) { fixed(v); }
  void u32(std::uint32_t v) { fixed(v); }
  void u64(std::uint64_t v) { fixed(v); }
  void i32(std::int32_t v) { fixed(v); }
  void i64(std::int64_t v) { fixed(v); }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  void blob(std::span<const std::byte> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  void site(SiteId s) { u32(s); }
  void program(ProgramId p) { u64(p.value); }
  void address(GlobalAddress a) { u64(a.value); }

  [[nodiscard]] const std::vector<std::byte>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked byte source.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  template <typename T>
    requires std::is_integral_v<T>
  [[nodiscard]] T fixed() {
    need(sizeof(T));
    std::make_unsigned_t<T> u = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      u |= static_cast<std::make_unsigned_t<T>>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return static_cast<T>(u);
  }

  [[nodiscard]] std::uint16_t u16() { return fixed<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return fixed<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return fixed<std::uint64_t>(); }
  [[nodiscard]] std::int32_t i32() { return fixed<std::int32_t>(); }
  [[nodiscard]] std::int64_t i64() { return fixed<std::int64_t>(); }

  [[nodiscard]] double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  [[nodiscard]] bool boolean() { return u8() != 0; }

  [[nodiscard]] std::string str() {
    std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::vector<std::byte> blob() {
    std::uint32_t n = u32();
    need(n);
    std::vector<std::byte> b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                             data_.begin() +
                                 static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  /// Reads an element count and validates it against the bytes actually
  /// remaining (each element needs at least `min_bytes_each`). Stops a
  /// malicious count field from driving a multi-gigabyte allocation.
  [[nodiscard]] std::uint32_t count(std::size_t min_bytes_each = 1) {
    std::uint32_t n = u32();
    if (min_bytes_each > 0 &&
        static_cast<std::size_t>(n) > remaining() / min_bytes_each) {
      throw DecodeError("count " + std::to_string(n) +
                        " exceeds remaining input");
    }
    return n;
  }

  [[nodiscard]] SiteId site() { return u32(); }
  [[nodiscard]] ProgramId program() { return ProgramId{u64()}; }
  [[nodiscard]] GlobalAddress address() { return GlobalAddress{u64()}; }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw DecodeError("truncated input: need " + std::to_string(n) +
                        " bytes, have " + std::to_string(data_.size() - pos_));
    }
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Convenience: copy a POD-ish value into a byte vector (used for
/// microframe parameter slots, which are opaque byte strings).
template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] std::vector<std::byte> to_bytes(const T& v) {
  std::vector<std::byte> out(sizeof(T));
  std::memcpy(out.data(), &v, sizeof(T));
  return out;
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] T from_bytes(std::span<const std::byte> b) {
  if (b.size() != sizeof(T)) {
    throw DecodeError("value size mismatch: have " + std::to_string(b.size()) +
                      ", want " + std::to_string(sizeof(T)));
  }
  T v;
  std::memcpy(&v, b.data(), sizeof(T));
  return v;
}

}  // namespace sdvm
