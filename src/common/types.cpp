#include "common/types.hpp"

namespace sdvm {

const char* to_string(ManagerId id) {
  switch (id) {
    case ManagerId::kProcessing:       return "processing";
    case ManagerId::kScheduling:       return "scheduling";
    case ManagerId::kCode:             return "code";
    case ManagerId::kAttractionMemory: return "attraction-memory";
    case ManagerId::kIo:               return "io";
    case ManagerId::kCluster:          return "cluster";
    case ManagerId::kProgram:          return "program";
    case ManagerId::kSite:             return "site";
    case ManagerId::kMessage:          return "message";
    case ManagerId::kSecurity:         return "security";
    case ManagerId::kNetwork:          return "network";
    case ManagerId::kCrash:            return "crash";
  }
  return "unknown";
}

}  // namespace sdvm
