// Clock abstraction. The same manager code runs against the wall clock
// (threads/tcp modes) and a virtual clock advanced by the discrete-event
// simulator (sim mode) — this seam is what makes Table 1 reproducible on a
// machine with fewer cores than the paper's cluster had sites.
#pragma once

#include <atomic>
#include <chrono>

#include "common/types.hpp"

namespace sdvm {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic "now" in nanoseconds since an arbitrary epoch.
  [[nodiscard]] virtual Nanos now() const = 0;
};

/// Real monotonic clock.
class WallClock final : public Clock {
 public:
  [[nodiscard]] Nanos now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  static WallClock& instance() {
    static WallClock c;
    return c;
  }
};

/// Manually advanced clock owned by the simulator.
class VirtualClock final : public Clock {
 public:
  [[nodiscard]] Nanos now() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void advance_to(Nanos t) {
    // Time never runs backwards; the event loop guarantees ordering.
    now_.store(t, std::memory_order_relaxed);
  }

 private:
  std::atomic<Nanos> now_{0};
};

}  // namespace sdvm
