// Experiment A5 (paper §4, code manager): "Test runs show that the
// compilation on-the-fly is indeed fast enough not to slow the system too
// much, mainly since microthreads are short code fragments only."
//
// A heterogeneous cluster (1 linux code-home + 7 foreign-platform sites)
// runs the prime job; every foreign site must pull source and compile
// before first execution, and uploads its binary so later requesters of
// the same platform get "the binary code at first go".
#include <cstdio>

#include "bench_util.hpp"

using namespace sdvm;
using bench::kPaperWorkMult;

namespace {

struct Obs {
  double seconds = 0;
  std::uint64_t compiles = 0;
  std::uint64_t source_fetches = 0;
  std::uint64_t binary_fetches = 0;
  std::uint64_t uploads = 0;
};

Obs run(bool heterogeneous) {
  sim::SimCluster cluster;
  SiteConfig home_cfg;
  home_cfg.platform = "linux-x86";
  cluster.add_sites(1, 1.0, home_cfg);
  SiteConfig worker_cfg;
  worker_cfg.platform = heterogeneous ? "hpux-parisc" : "linux-x86";
  cluster.add_sites(7, 1.0, worker_cfg);

  apps::PrimesParams params;
  params.p = 100;
  params.width = 20;
  params.work_mult = kPaperWorkMult;

  Nanos t0 = cluster.now();
  auto pid = cluster.start_program(apps::make_primes_program(params));
  if (!pid.is_ok()) std::abort();
  auto code = cluster.run_program(pid.value(), 100'000 * kNanosPerSecond);
  if (!code.is_ok()) std::abort();

  Obs o;
  o.seconds = static_cast<double>(cluster.now() - t0) / kNanosPerSecond;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    o.compiles += cluster.site(i).code().compiles;
    o.source_fetches += cluster.site(i).code().source_fetches;
    o.binary_fetches += cluster.site(i).code().binary_fetches;
    o.uploads += cluster.site(i).code().uploads_received;
  }
  return o;
}

}  // namespace

int main() {
  std::printf("A5: on-the-fly compilation (8 sites, primes p=100 width=20)\n");
  Obs homo = run(false);
  Obs hetero = run(true);

  std::printf("%16s | %10s | %8s | %10s | %10s | %8s\n", "cluster",
              "makespan", "compiles", "src fetch", "bin fetch", "uploads");
  std::printf("--------------------------------------------------------------------------\n");
  std::printf("%16s | %9.1fs | %8llu | %10llu | %10llu | %8llu\n",
              "homogeneous", homo.seconds,
              static_cast<unsigned long long>(homo.compiles),
              static_cast<unsigned long long>(homo.source_fetches),
              static_cast<unsigned long long>(homo.binary_fetches),
              static_cast<unsigned long long>(homo.uploads));
  std::printf("%16s | %9.1fs | %8llu | %10llu | %10llu | %8llu\n",
              "1+7 heterogeneous", hetero.seconds,
              static_cast<unsigned long long>(hetero.compiles),
              static_cast<unsigned long long>(hetero.source_fetches),
              static_cast<unsigned long long>(hetero.binary_fetches),
              static_cast<unsigned long long>(hetero.uploads));
  std::printf("\ncompile-on-the-fly slowdown: %+.2f%%  (paper: \"fast enough "
              "not to slow the system too much\")\n",
              (hetero.seconds / homo.seconds - 1.0) * 100.0);
  return 0;
}
