// msgrate — small-message throughput of the TCP transport, with and
// without coalescing. The SDVM wire is dominated by ~60 B messages
// (apply-param, signals; see BENCH_slot_scaling), so the quantity that
// gates scaling is messages per second between two daemons on one host.
//
//   bench_msgrate [--smoke] [--msgs N] [--size BYTES]
//
// Two configurations of the same event-loop transport are measured:
//   * unbatched — flush_frames=1, flush_deadline=0: every frame leaves in
//     its own writev, reproducing the pre-batching one-datagram-at-a-time
//     wire behaviour;
//   * batched   — default flush policy (32 KiB / 256 frames / 200 us).
// The emitted BENCH_msgrate.json record carries msgs/sec for both, the
// speedup, bytes/msg on the wire, and the flush-size histogram
// (frames-per-batch buckets) of the batched run.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include "net/tcp.hpp"

using namespace sdvm;

namespace {

struct RateResult {
  bool ok = false;
  double msgs_per_sec = 0;
  double bytes_per_msg = 0;  // wire bytes incl. framing / messages
  net::TcpTransport::Stats stats;
};

/// `burst` > 1 enqueues via send_batch() in bursts of that many frames —
/// how the runtime's fan-out paths (heartbeats, deferred results) emit
/// since the API redesign; `burst` == 1 is the per-datagram send() path.
RateResult run_rate(std::size_t msgs, std::size_t size, std::size_t burst,
                    net::TcpTransport::Options options) {
  struct Sink {
    std::mutex m;
    std::condition_variable cv;
    std::atomic<std::size_t> received{0};
  };
  auto sink = std::make_shared<Sink>();
  std::size_t want = msgs;
  auto receiver = [sink, want](std::vector<std::byte> frame) {
    (void)frame;
    if (sink->received.fetch_add(1, std::memory_order_relaxed) + 1 == want) {
      std::lock_guard lk(sink->m);
      sink->cv.notify_all();
    }
  };
  auto rx = net::TcpTransport::listen(0, receiver);
  if (!rx.is_ok()) {
    std::fprintf(stderr, "rx listen: %s\n", rx.status().to_string().c_str());
    return {};
  }
  auto tx = net::TcpTransport::listen(0, [](std::vector<std::byte>) {},
                                      options);
  if (!tx.is_ok()) {
    std::fprintf(stderr, "tx listen: %s\n", tx.status().to_string().c_str());
    return {};
  }
  const std::string dest = rx.value()->local_address();
  std::vector<std::byte> payload(size, std::byte{0x5a});

  auto submit = [&](std::size_t n) -> bool {
    for (;;) {
      Status st;
      if (n == 1) {
        st = tx.value()->send(dest, payload);
      } else {
        std::vector<net::Frame> frames(n, payload);
        st = tx.value()->send_batch(dest, std::move(frames));
      }
      if (st.is_ok()) return true;
      if (st.code() != ErrorCode::kResourceExhausted) {
        std::fprintf(stderr, "send: %s\n", st.to_string().c_str());
        return false;
      }
      // Queue full: natural backpressure, let the loop drain.
      std::this_thread::yield();
    }
  };

  auto start = std::chrono::steady_clock::now();
  for (std::size_t sent = 0; sent < msgs;) {
    std::size_t n = std::min(burst, msgs - sent);
    if (!submit(n)) return {};
    sent += n;
  }
  tx.value()->flush(dest);
  {
    std::unique_lock lk(sink->m);
    if (!sink->cv.wait_for(lk, std::chrono::seconds(120),
                           [&] { return sink->received.load() >= want; })) {
      std::fprintf(stderr, "timeout: received %zu of %zu\n",
                   sink->received.load(), want);
      return {};
    }
  }
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();

  RateResult r;
  r.ok = true;
  r.msgs_per_sec = static_cast<double>(msgs) / elapsed;
  r.stats = tx.value()->stats();
  r.bytes_per_msg =
      static_cast<double>(r.stats.bytes_sent) / static_cast<double>(msgs);
  tx.value()->close();
  rx.value()->close();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t msgs = 200'000;
  std::size_t size = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      msgs = 20'000;
    } else if (std::strcmp(argv[i], "--msgs") == 0 && i + 1 < argc) {
      msgs = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--size") == 0 && i + 1 < argc) {
      size = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: bench_msgrate [--smoke] [--msgs N] "
                           "[--size BYTES]\n");
      return 2;
    }
  }

  net::TcpTransport::Options unbatched;
  unbatched.flush_frames = 1;
  unbatched.flush_deadline = 0;  // one writev per frame: pre-batching wire
  unbatched.max_queued_frames = 1 << 16;
  std::printf("msgrate: %zu msgs x %zu B, unbatched baseline...\n", msgs,
              size);
  RateResult base = run_rate(msgs, size, /*burst=*/1, unbatched);
  if (!base.ok) return 1;
  std::printf("  unbatched: %.0f msgs/s (%.1f B/msg on the wire)\n",
              base.msgs_per_sec, base.bytes_per_msg);

  net::TcpTransport::Options batched;  // default flush policy
  batched.max_queued_frames = 1 << 16;
  std::printf("msgrate: batched (flush %zu B / %zu frames / %lld ns)...\n",
              batched.flush_bytes, batched.flush_frames,
              static_cast<long long>(batched.flush_deadline));
  RateResult bat = run_rate(msgs, size, /*burst=*/256, batched);
  if (!bat.ok) return 1;
  double speedup = bat.msgs_per_sec / base.msgs_per_sec;
  std::printf("  batched:   %.0f msgs/s (%.1f B/msg on the wire), "
              "%.1fx vs unbatched\n",
              bat.msgs_per_sec, bat.bytes_per_msg, speedup);

  std::FILE* f = std::fopen("BENCH_msgrate.json", "a");
  if (f != nullptr) {
    std::string hist;
    for (std::size_t k = 0;
         k < net::TcpTransport::Stats::kBatchBuckets; ++k) {
      if (!hist.empty()) hist += ",";
      hist += std::to_string(bat.stats.frames_per_batch[k]);
    }
    std::fprintf(
        f,
        "{\"bench\":\"msgrate\",\"msgs\":%zu,\"size\":%zu,"
        "\"msgs_per_sec\":%.1f,\"bytes_per_msg\":%.2f,"
        "\"unbatched_msgs_per_sec\":%.1f,\"unbatched_bytes_per_msg\":%.2f,"
        "\"speedup_vs_unbatched\":%.3f,"
        "\"batches_sent\":%llu,\"flush_size_hits\":%llu,"
        "\"flush_deadline_hits\":%llu,\"frames_per_batch\":[%s]}\n",
        msgs, size, bat.msgs_per_sec, bat.bytes_per_msg, base.msgs_per_sec,
        base.bytes_per_msg, speedup,
        static_cast<unsigned long long>(bat.stats.batches_sent),
        static_cast<unsigned long long>(bat.stats.flush_size_hits),
        static_cast<unsigned long long>(bat.stats.flush_deadline_hits),
        hist.c_str());
    std::fclose(f);
  }
  return 0;
}
