// Experiment A3 (paper §4, security manager): "If a cluster can be judged
// secure ... the security manager can be disabled in favor of a
// performance gain. In this case, all communication is performed
// unencrypted." Measures the real CPU cost of sealing every SDMessage
// (threads mode, wall clock) plus the traffic blow-up.
#include <chrono>
#include <cstdio>

#include "api/local_cluster.hpp"
#include "apps/primes.hpp"

using namespace sdvm;

namespace {

struct Obs {
  double seconds = 0;
  std::uint64_t sealed = 0;
  std::uint64_t bytes = 0;
};

Obs run(bool encrypt) {
  LocalCluster cluster;
  SiteConfig cfg;
  cfg.encrypt = encrypt;
  cfg.cluster_password = "bench";
  cluster.add_sites(3, cfg);

  apps::PrimesParams params;
  params.p = 300;
  params.width = 16;
  params.work_mult = 0;
  params.spin = 20'000;  // enough per-test work that frames distribute

  auto t0 = std::chrono::steady_clock::now();
  auto pid = cluster.start_program(apps::make_primes_program(params));
  if (!pid.is_ok()) std::abort();
  auto code = cluster.wait_program(pid.value(), 120 * kNanosPerSecond);
  if (!code.is_ok()) std::abort();

  Obs o;
  o.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    o.sealed += cluster.site(i).security().sealed_count;
  }
  o.bytes = cluster.network().total_stats().bytes;
  return o;
}

}  // namespace

int main() {
  std::printf("A3: security manager on/off (3 sites, primes p=150, threads "
              "mode)\n");
  // Warm up allocator/threads once so the comparison is fair.
  (void)run(false);
  Obs plain = run(false);
  Obs sealed = run(true);

  std::printf("%12s | %10s | %12s | %12s\n", "mode", "wall time",
              "msgs sealed", "wire bytes");
  std::printf("------------------------------------------------------\n");
  std::printf("%12s | %9.3fs | %12llu | %12llu\n", "plaintext", plain.seconds,
              static_cast<unsigned long long>(plain.sealed),
              static_cast<unsigned long long>(plain.bytes));
  std::printf("%12s | %9.3fs | %12llu | %12llu\n", "encrypted", sealed.seconds,
              static_cast<unsigned long long>(sealed.sealed),
              static_cast<unsigned long long>(sealed.bytes));
  std::printf("\nencryption cost: %+.1f%% wall time, %+.1f%% wire bytes "
              "(nonce+MAC per message)\n",
              (sealed.seconds / plain.seconds - 1.0) * 100.0,
              (static_cast<double>(sealed.bytes) /
                   static_cast<double>(plain.bytes) -
               1.0) *
                  100.0);
  return 0;
}
