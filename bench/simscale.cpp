// simscale — raw discrete-event throughput of the simulator at large
// memberships: how many simulated events per wall-clock second the
// calendar-queue core sustains while a cluster of n sites idles
// (heartbeats, gossip, failure detection — the permanent background of
// every chaos and scale run).
//
//   bench_simscale [--smoke] [--sites N]... [--virtual-secs S] [--zones Z]
//
// Each membership is measured twice: construction (n sequential
// sign-ons) and a steady-state idle window. One JSON line per size goes
// to BENCH_sim_scale.json with events/sec for both phases. --smoke runs
// the small sizes only, as a CI guard that the event loop never regresses
// to a super-linear scan; the full sweep covers 8..1000 sites.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/sim_cluster.hpp"
#include "sim/topology.hpp"

using namespace sdvm;

namespace {

double wall_seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

/// The chaos harness's large-membership profile: ring heartbeats and
/// delta gossip above 64 sites, full mesh (paper behavior) below.
SiteConfig scale_site_config(int sites) {
  SiteConfig cfg;
  if (sites > 64) {
    cfg.heartbeat_fanout = 4;
    cfg.gossip_delta = true;
    cfg.heartbeat_interval = 200'000'000;
    cfg.failure_timeout = kNanosPerSecond;
    cfg.help_retry_interval = 250'000'000;
  }
  return cfg;
}

struct Sample {
  int sites = 0;
  int zones = 0;
  double build_secs = 0;       // wall time to sign on all n sites
  double idle_secs = 0;        // wall time for the idle window
  double virtual_secs = 0;     // simulated span of the idle window
  std::uint64_t build_events = 0;
  std::uint64_t idle_events = 0;

  [[nodiscard]] double idle_events_per_sec() const {
    return idle_secs > 0 ? static_cast<double>(idle_events) / idle_secs : 0;
  }
};

Sample measure(int sites, int zones, double virtual_secs) {
  sim::SimCluster::Options opts;
  if (zones > 1) {
    net::LinkModel intra;
    intra.latency = 20'000;
    intra.per_byte = 5;
    net::LinkModel up;
    up.latency = 200'000;
    up.per_byte = 10;
    opts.zones = sim::make_rack_topology(zones, 0, intra, up);
    for (int r = 0; r < zones; ++r) {
      opts.zones[static_cast<std::size_t>(r) + 1].sites =
          sites / zones + (r < sites % zones ? 1 : 0);
    }
  }
  sim::SimCluster cluster(opts);
  const SiteConfig cfg = scale_site_config(sites);

  Sample s;
  s.sites = sites;
  s.zones = zones;
  s.virtual_secs = virtual_secs;

  auto t0 = std::chrono::steady_clock::now();
  if (zones > 1) {
    if (!cluster.add_topology_sites(cfg).is_ok()) return s;
  } else {
    cluster.add_sites(sites, 1.0, cfg);
  }
  s.build_secs = wall_seconds(t0);
  s.build_events = cluster.loop().executed();

  t0 = std::chrono::steady_clock::now();
  cluster.loop().run_for(static_cast<Nanos>(virtual_secs * kNanosPerSecond));
  s.idle_secs = wall_seconds(t0);
  s.idle_events = cluster.loop().executed() - s.build_events;
  return s;
}

void append_record(const Sample& s) {
  std::FILE* f = std::fopen("BENCH_sim_scale.json", "a");
  if (f == nullptr) return;
  std::fprintf(
      f,
      "{\"bench\":\"sim_scale\",\"sites\":%d,\"zones\":%d,"
      "\"virtual_secs\":%.1f,\"build_secs\":%.3f,\"build_events\":%llu,"
      "\"idle_secs\":%.3f,\"idle_events\":%llu,\"events_per_sec\":%.0f}\n",
      s.sites, s.zones, s.virtual_secs, s.build_secs,
      static_cast<unsigned long long>(s.build_events), s.idle_secs,
      static_cast<unsigned long long>(s.idle_events), s.idle_events_per_sec());
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  double virtual_secs = 10.0;
  int zones = 0;
  std::vector<int> sizes;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--sites") == 0 && i + 1 < argc) {
      sizes.push_back(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--virtual-secs") == 0 && i + 1 < argc) {
      virtual_secs = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--zones") == 0 && i + 1 < argc) {
      zones = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--sites N]... [--virtual-secs S] "
                   "[--zones Z]\n",
                   argv[0]);
      return 2;
    }
  }
  if (sizes.empty()) {
    sizes = smoke ? std::vector<int>{8, 64} : std::vector<int>{8, 64, 256, 1000};
  }
  if (smoke && virtual_secs > 5.0) virtual_secs = 5.0;

  std::printf("%8s %6s %12s %12s %14s\n", "sites", "zones", "build-s",
              "idle-s", "events/sec");
  for (int n : sizes) {
    Sample s = measure(n, zones, virtual_secs);
    if (s.idle_events == 0) {
      std::fprintf(stderr, "measurement failed at %d sites\n", n);
      return 1;
    }
    std::printf("%8d %6d %12.3f %12.3f %14.0f\n", s.sites, s.zones,
                s.build_secs, s.idle_secs, s.idle_events_per_sec());
    append_record(s);
  }
  return 0;
}
