// Shared helpers for the SDVM benchmark harness. Table benches run the
// full daemon stack under the discrete-event simulator, so "time" is
// virtual seconds on the modeled cluster — the quantity the paper reports.
//
// Every run also captures the cluster-wide aggregated metrics snapshot
// (the same kMetricsQuery data sdvm-top shows), and append_json_record()
// persists one JSON line per run into BENCH_<name>.json so sweeps can be
// post-processed without re-running.
#pragma once

#include <cstdio>
#include <string>

#include "apps/primes.hpp"
#include "sim/sim_cluster.hpp"

namespace sdvm::bench {

struct RunResult {
  double seconds = 0;       // virtual makespan
  std::int64_t exit_code = -1;
  std::uint64_t executed = 0;
  std::uint64_t messages = 0;
  std::uint64_t help_requests = 0;
  bool ok = false;
  /// Cluster-wide aggregated metrics at end of run (all sites merged).
  metrics::MetricsSnapshot metrics;
};

/// Captures the cluster-wide aggregated metrics snapshot through the
/// abstract Cluster facade — works identically for SimCluster,
/// LocalCluster and TcpNode handles.
inline void capture_metrics(Cluster& cluster, RunResult& r) {
  auto cs = cluster.cluster_status(/*via_index=*/0, 2 * kNanosPerSecond);
  if (cs.is_ok()) r.metrics = cs.value().aggregate();
}

inline RunResult run_primes_sim(int sites, const apps::PrimesParams& params,
                                const SiteConfig& base = {},
                                sim::SimCluster::Options options = {}) {
  sim::SimCluster cluster(options);
  cluster.add_sites(sites, /*speed=*/1.0, base);
  Nanos start = cluster.now();
  // Drive the run through the Cluster facade (run == run_program in sim).
  Cluster& handle = cluster;
  auto pid = handle.start_program(apps::make_primes_program(params));
  RunResult r;
  if (!pid.is_ok()) return r;
  auto code = handle.run(pid.value(), 100'000 * kNanosPerSecond);
  if (!code.is_ok()) return r;
  r.ok = true;
  r.exit_code = code.value();
  r.seconds = static_cast<double>(cluster.now() - start) / kNanosPerSecond;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    r.executed += cluster.site(i).processing().executed_total;
    r.messages += cluster.site(i).messages().sent_count;
    r.help_requests += cluster.site(i).scheduling().help_requests_sent;
  }
  capture_metrics(handle, r);
  return r;
}

/// Appends one JSON record (a single line) to BENCH_<name>.json in the
/// working directory: run parameters, headline numbers, and the full
/// cluster-wide metrics snapshot. `params_json` is a JSON fragment like
/// "\"sites\":4,\"p\":100" (no surrounding braces).
inline void append_json_record(const std::string& name,
                               const std::string& params_json,
                               const RunResult& r) {
  std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"bench\":\"%s\",%s%s\"ok\":%s,\"seconds\":%.6f,"
               "\"exit_code\":%lld,\"executed\":%llu,\"messages\":%llu,"
               "\"help_requests\":%llu,\"metrics\":%s}\n",
               metrics::json_escape(name).c_str(), params_json.c_str(),
               params_json.empty() ? "" : ",", r.ok ? "true" : "false",
               r.seconds, static_cast<long long>(r.exit_code),
               static_cast<unsigned long long>(r.executed),
               static_cast<unsigned long long>(r.messages),
               static_cast<unsigned long long>(r.help_requests),
               r.metrics.to_json().c_str());
  std::fclose(f);
}

/// The paper's reference per-candidate cost: chosen so a 1-site run of
/// p=100/width=10 lands near the paper's 33.9 s on the virtual
/// "Pentium IV" (speed 1.0).
inline constexpr std::int64_t kPaperWorkMult = 58'000'000;

}  // namespace sdvm::bench
