// Shared helpers for the SDVM benchmark harness. Table benches run the
// full daemon stack under the discrete-event simulator, so "time" is
// virtual seconds on the modeled cluster — the quantity the paper reports.
#pragma once

#include <cstdio>
#include <string>

#include "apps/primes.hpp"
#include "sim/sim_cluster.hpp"

namespace sdvm::bench {

struct RunResult {
  double seconds = 0;       // virtual makespan
  std::int64_t exit_code = -1;
  std::uint64_t executed = 0;
  std::uint64_t messages = 0;
  std::uint64_t help_requests = 0;
  bool ok = false;
};

inline RunResult run_primes_sim(int sites, const apps::PrimesParams& params,
                                const SiteConfig& base = {},
                                sim::SimCluster::Options options = {}) {
  sim::SimCluster cluster(options);
  cluster.add_sites(sites, /*speed=*/1.0, base);
  Nanos start = cluster.now();
  auto pid = cluster.start_program(apps::make_primes_program(params));
  RunResult r;
  if (!pid.is_ok()) return r;
  auto code = cluster.run_program(pid.value(), 100'000 * kNanosPerSecond);
  if (!code.is_ok()) return r;
  r.ok = true;
  r.exit_code = code.value();
  r.seconds = static_cast<double>(cluster.now() - start) / kNanosPerSecond;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    r.executed += cluster.site(i).processing().executed_total;
    r.messages += cluster.site(i).messages().sent_count;
    r.help_requests += cluster.site(i).scheduling().help_requests_sent;
  }
  return r;
}

/// The paper's reference per-candidate cost: chosen so a 1-site run of
/// p=100/width=10 lands near the paper's 33.9 s on the virtual
/// "Pentium IV" (speed 1.0).
inline constexpr std::int64_t kPaperWorkMult = 58'000'000;

}  // namespace sdvm::bench
