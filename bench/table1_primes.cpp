// Reproduces Table 1 of the paper: "Exemplary speedup of the SDVM".
// Parallel search for the first p primes, width candidates in flight per
// round, on clusters of 1/4/8 identical (speed 1.0) sites.
//
//   paper row format:  p  width  1site  4sites(speedup)  8sites(speedup)
//
// Times are virtual seconds on the simulated cluster; the per-candidate
// compute cost is calibrated so the 1-site column lands near the paper's
// Pentium-IV numbers (see EXPERIMENTS.md for the paper-vs-measured table).
#include <cstdio>
#include <cstring>

#include "bench_util.hpp"

using sdvm::apps::PrimesParams;
using sdvm::bench::kPaperWorkMult;
using sdvm::bench::run_primes_sim;

int main(int argc, char** argv) {
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }

  // --full runs the paper's exact parameter grid; the default trims the
  // two largest rows to keep `ctest`-style sweeps quick.
  std::vector<std::int64_t> ps =
      full ? std::vector<std::int64_t>{100, 200, 500, 1000}
           : std::vector<std::int64_t>{100, 200, 500};
  std::vector<std::int64_t> widths = {10, 20};
  std::vector<int> site_counts = {1, 4, 8};

  std::printf("Table 1: exemplary speedup of the SDVM (virtual seconds)\n");
  std::printf("%6s %6s | %9s | %9s %-7s | %9s %-7s\n", "p", "width", "1 site",
              "4 sites", "(spdup)", "8 sites", "(spdup)");
  std::printf("-------------------------------------------------------------\n");

  for (std::int64_t width : widths) {
    for (std::int64_t p : ps) {
      PrimesParams params;
      params.p = p;
      params.width = width;
      params.work_mult = kPaperWorkMult;

      double times[3] = {0, 0, 0};
      for (std::size_t s = 0; s < site_counts.size(); ++s) {
        auto r = run_primes_sim(site_counts[s], params);
        if (!r.ok) {
          std::fprintf(stderr, "run failed (p=%lld width=%lld sites=%d)\n",
                       static_cast<long long>(p),
                       static_cast<long long>(width), site_counts[s]);
          return 1;
        }
        times[s] = r.seconds;
        sdvm::bench::append_json_record(
            "table1_primes",
            "\"sites\":" + std::to_string(site_counts[s]) +
                ",\"p\":" + std::to_string(p) +
                ",\"width\":" + std::to_string(width),
            r);
      }
      std::printf("%6lld %6lld | %8.1fs | %8.1fs (%.1f)   | %8.1fs (%.1f)\n",
                  static_cast<long long>(p), static_cast<long long>(width),
                  times[0], times[1], times[0] / times[1], times[2],
                  times[0] / times[2]);
    }
  }
  std::printf("\npaper (Pentium IV 1.7 GHz): speedups 3.4-3.6 on 4 sites, "
              "6.4-7.0 on 8 sites;\nsee EXPERIMENTS.md for the row-by-row "
              "comparison.\n");
  return 0;
}
