// Micro-benchmarks (google-benchmark) for the SDVM's hot paths: crypto
// throughput (link encryption cost per byte), SDMessage and microframe
// serialization, MicroC compile + dispatch rate, and the in-process
// fabric. These quantify the constants behind the table benches.
#include <benchmark/benchmark.h>

#include <cstring>

#include "crypto/cipher.hpp"
#include "crypto/sha256.hpp"
#include "microc/compiler.hpp"
#include "microc/vm.hpp"
#include "net/inproc.hpp"
#include "runtime/frame.hpp"
#include "runtime/message.hpp"

namespace {

using namespace sdvm;

void BM_Sha256(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto digest = crypto::Sha256::hash(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ChaCha20(benchmark::State& state) {
  crypto::ChaCha20::Key key{};
  crypto::ChaCha20::Nonce nonce{};
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    crypto::ChaCha20::apply(key, nonce, 0, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SealOpen(benchmark::State& state) {
  auto key = crypto::derive_pair_key(crypto::derive_master_key("pw"), 1, 2);
  std::vector<std::byte> plain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto sealed = crypto::seal(key, 1, plain);
    auto opened = crypto::open(key, sealed);
    benchmark::DoNotOptimize(opened);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SealOpen)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SdMessageRoundTrip(benchmark::State& state) {
  SdMessage m;
  m.src = 1;
  m.dst = 2;
  m.type = MsgType::kApplyParam;
  m.program = ProgramId(1, 1);
  m.payload.assign(static_cast<std::size_t>(state.range(0)), std::byte{7});
  for (auto _ : state) {
    auto body = m.serialize_body();
    auto back = SdMessage::deserialize_body(1, 2, body);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_SdMessageRoundTrip)->Arg(16)->Arg(256)->Arg(4096);

void BM_MicroframeRoundTrip(benchmark::State& state) {
  Microframe f(FrameId(1, 1), ProgramId(1, 1), 0,
               static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < f.params.size(); ++i) {
    (void)f.apply(i, to_bytes(std::int64_t{42}));
  }
  for (auto _ : state) {
    ByteWriter w;
    f.serialize(w);
    ByteReader r(w.bytes());
    auto back = Microframe::deserialize(r);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_MicroframeRoundTrip)->Arg(2)->Arg(8)->Arg(32);

void BM_MicroCCompile(benchmark::State& state) {
  std::string src = R"(
    var n = param(0);
    var isp = 1;
    var d = 2;
    while (d * d <= n) {
      if (n % d == 0) { isp = 0; d = n; }
      d = d + 1;
    }
    send(param(1), param(2), isp);
  )";
  for (auto _ : state) {
    auto prog = microc::compile(src, "bench");
    benchmark::DoNotOptimize(prog);
  }
}
BENCHMARK(BM_MicroCCompile);

class NullHandler : public microc::IntrinsicHandler {
 public:
  std::int64_t param(std::int64_t) override { return 104729; }
  std::int64_t num_params() override { return 3; }
  std::int64_t spawn(const std::string&, std::int64_t) override { return 1; }
  void send(std::int64_t, std::int64_t, std::int64_t) override {}
  std::int64_t alloc(std::int64_t) override { return 1; }
  std::int64_t load(std::int64_t, std::int64_t) override { return 0; }
  void store(std::int64_t, std::int64_t, std::int64_t) override {}
  void out(std::int64_t) override {}
  void out_str(const std::string&) override {}
  void charge(std::int64_t) override {}
  std::int64_t self_site() override { return 1; }
  std::int64_t arg(std::int64_t) override { return 0; }
  std::int64_t num_args() override { return 0; }
  void exit_program(std::int64_t) override {}
};

void BM_VmPrimalityTest(benchmark::State& state) {
  auto prog = microc::compile(R"(
    var n = param(0);
    var isp = 1;
    var d = 2;
    while (d * d <= n) {
      if (n % d == 0) { isp = 0; d = n; }
      d = d + 1;
    }
    send(param(1), param(2), isp);
  )", "bench");
  NullHandler handler;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    auto r = microc::Vm::run(prog.value(), handler);
    cycles = r.cycles;
    benchmark::DoNotOptimize(r);
  }
  state.counters["vm_instructions"] = static_cast<double>(cycles);
}
BENCHMARK(BM_VmPrimalityTest);

void BM_InProcSend(benchmark::State& state) {
  net::InProcNetwork net;
  std::uint64_t received = 0;
  auto a = net.attach([&](std::vector<std::byte> b) { received += b.size(); });
  auto b = net.attach([](std::vector<std::byte>) {});
  std::vector<std::byte> payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto st = b->send(a->local_address(), payload);
    benchmark::DoNotOptimize(st);
  }
  benchmark::DoNotOptimize(received);
}
BENCHMARK(BM_InProcSend)->Arg(64)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
