// Experiment A8: network-latency sensitivity. The paper positions the
// SDVM as "optimized for the use in the area of intranets" but extensible
// "to grid computing like the internet" (§1, §2.2). This sweep shows where
// that boundary lies: makespan and achieved speedup of the distributed
// prime search as one-way latency grows from LAN to WAN scales.
#include <cstdio>

#include "bench_util.hpp"

using namespace sdvm;
using bench::kPaperWorkMult;
using bench::run_primes_sim;

int main() {
  std::printf("A8: latency sensitivity (8 sites, primes p=100 width=20, "
              "58 ms per candidate)\n");
  std::printf("%12s | %10s | %8s | %10s | %s\n", "latency", "makespan",
              "speedup", "messages", "regime");
  std::printf("----------------------------------------------------------------\n");

  apps::PrimesParams params;
  params.p = 100;
  params.width = 20;
  params.work_mult = kPaperWorkMult;

  auto base = run_primes_sim(1, params);
  if (!base.ok) return 1;

  struct Row {
    Nanos latency;
    const char* regime;
  };
  for (auto [latency, regime] :
       {Row{10'000, "same rack"}, Row{100'000, "intranet"},
        Row{1'000'000, "campus"}, Row{10'000'000, "regional WAN"},
        Row{50'000'000, "internet"}, Row{150'000'000, "intercontinental"}}) {
    sim::SimCluster::Options options;
    options.link.latency = latency;
    auto r = run_primes_sim(8, params, SiteConfig{}, options);
    if (!r.ok) {
      std::fprintf(stderr, "run failed at latency %lld\n",
                   static_cast<long long>(latency));
      return 1;
    }
    std::printf("%9.1f ms | %9.1fs | %8.2f | %10llu | %s\n",
                static_cast<double>(latency) / 1e6, r.seconds,
                base.seconds / r.seconds,
                static_cast<unsigned long long>(r.messages), regime);
  }
  std::printf("\n1-site baseline: %.1fs. Speedup decays once round-trips "
              "rival the 58 ms\nper-candidate compute — quantifying the "
              "paper's intranet-first positioning.\n", base.seconds);
  return 0;
}
