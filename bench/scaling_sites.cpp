// Experiment S1: scalability of the decentralized runtime (paper §2.2:
// "the cluster is essentially scalable to any desired size" because "no
// structure-related bottlenecks may occur"). Speedup and efficiency of the
// prime search over 1..16 sites, for a narrow and a wide window.
#include <cstdio>

#include "bench_util.hpp"

using sdvm::apps::PrimesParams;
using sdvm::bench::kPaperWorkMult;
using sdvm::bench::run_primes_sim;

int main() {
  std::printf("S1: scaling the cluster (primes p=200, virtual seconds)\n");
  std::printf("%6s | %12s %8s %6s | %12s %8s %6s\n", "sites", "width=10",
              "speedup", "eff", "width=32", "speedup", "eff");
  std::printf("---------------------------------------------------------------\n");

  double base10 = 0, base32 = 0;
  for (int sites : {1, 2, 4, 8, 12, 16}) {
    PrimesParams narrow;
    narrow.p = 200;
    narrow.width = 10;
    narrow.work_mult = kPaperWorkMult;
    PrimesParams wide = narrow;
    wide.width = 32;

    auto r10 = run_primes_sim(sites, narrow);
    auto r32 = run_primes_sim(sites, wide);
    if (!r10.ok || !r32.ok) {
      std::fprintf(stderr, "run failed at %d sites\n", sites);
      return 1;
    }
    sdvm::bench::append_json_record(
        "scaling_sites",
        "\"sites\":" + std::to_string(sites) + ",\"width\":10", r10);
    sdvm::bench::append_json_record(
        "scaling_sites",
        "\"sites\":" + std::to_string(sites) + ",\"width\":32", r32);
    if (sites == 1) {
      base10 = r10.seconds;
      base32 = r32.seconds;
    }
    std::printf("%6d | %11.1fs %8.2f %5.0f%% | %11.1fs %8.2f %5.0f%%\n",
                sites, r10.seconds, base10 / r10.seconds,
                100.0 * base10 / r10.seconds / sites, r32.seconds,
                base32 / r32.seconds, 100.0 * base32 / r32.seconds / sites);
  }
  std::printf("\nexpected shape: speedup saturates at ~width/ceil(width/sites)"
              " (round barrier);\nwider windows keep more sites busy.\n");
  return 0;
}
