// Experiment A1 (paper §3.3): "a LIFO-strategy is used for the replying to
// help requests to hide the communication latencies. To avoid starving of
// microframes, a FIFO-strategy is used momentarily for the local
// scheduling." This ablation sweeps the help-reply policy against network
// latency and reports the makespan of the prime search.
#include <cstdio>

#include "bench_util.hpp"

using namespace sdvm;
using bench::kPaperWorkMult;
using bench::run_primes_sim;

int main() {
  std::printf("A1: help-reply policy (8 sites, primes p=100 width=20)\n");
  std::printf("%12s | %12s | %12s | %8s\n", "latency", "LIFO reply",
              "FIFO reply", "delta");
  std::printf("--------------------------------------------------------\n");

  for (Nanos latency : {Nanos{100'000}, Nanos{1'000'000}, Nanos{5'000'000},
                        Nanos{20'000'000}}) {
    apps::PrimesParams params;
    params.p = 100;
    params.width = 20;
    params.work_mult = kPaperWorkMult / 4;

    sim::SimCluster::Options options;
    options.link.latency = latency;

    SiteConfig lifo_cfg;
    lifo_cfg.help_reply = HelpReplyPolicy::kLifo;
    SiteConfig fifo_cfg;
    fifo_cfg.help_reply = HelpReplyPolicy::kFifo;

    auto lifo = run_primes_sim(8, params, lifo_cfg, options);
    auto fifo = run_primes_sim(8, params, fifo_cfg, options);
    if (!lifo.ok || !fifo.ok) {
      std::fprintf(stderr, "run failed at latency %lld\n",
                   static_cast<long long>(latency));
      return 1;
    }
    std::printf("%9.1f ms | %11.2fs | %11.2fs | %+7.2f%%\n",
                static_cast<double>(latency) / 1e6, lifo.seconds, fifo.seconds,
                (fifo.seconds / lifo.seconds - 1.0) * 100.0);
  }
  std::printf("\nlocal queue policy (same run, FIFO vs LIFO local order):\n");
  for (auto policy : {LocalSchedPolicy::kFifo, LocalSchedPolicy::kLifo}) {
    apps::PrimesParams params;
    params.p = 100;
    params.width = 20;
    params.work_mult = kPaperWorkMult / 4;
    SiteConfig cfg;
    cfg.local_sched = policy;
    auto r = run_primes_sim(8, params, cfg);
    std::printf("  local %-5s : %.2fs\n",
                policy == LocalSchedPolicy::kFifo ? "FIFO" : "LIFO",
                r.seconds);
  }
  return 0;
}
