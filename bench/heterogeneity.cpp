// Experiment A9 (paper §3.5): "Sites having less computing power are
// relieved while more powerful sites get more work due to the load
// balancing mechanism." Clusters of equal total capacity but different
// speed mixes run the same job; demand-driven help requests should keep
// the makespan near the uniform cluster's, with per-site work shares
// tracking speeds.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace sdvm;
using bench::kPaperWorkMult;

namespace {

struct Mix {
  const char* name;
  std::vector<double> speeds;  // total = 4.0 in every mix
};

}  // namespace

int main() {
  std::printf("A9: heterogeneous site speeds (total capacity 4.0, primes "
              "p=200 width=32)\n");
  std::printf("%-22s | %10s | per-site executed shares\n", "mix", "makespan");
  std::printf("---------------------------------------------------------------\n");

  for (const Mix& mix : {Mix{"4 x 1.0 (uniform)", {1, 1, 1, 1}},
                         Mix{"2.0 + 1.0 + 2 x 0.5", {2.0, 1.0, 0.5, 0.5}},
                         Mix{"3.0 + 3 x 0.33", {3.0, 0.34, 0.33, 0.33}},
                         Mix{"2 x 1.5 + 2 x 0.5", {1.5, 1.5, 0.5, 0.5}}}) {
    sim::SimCluster cluster;
    for (double speed : mix.speeds) {
      SiteConfig cfg;
      cfg.speed = speed;
      cfg.help_retry_interval = 500'000;
      cluster.add_site(cfg);
    }
    apps::PrimesParams params;
    params.p = 200;
    params.width = 32;
    params.work_mult = kPaperWorkMult;
    Nanos t0 = cluster.now();
    auto pid = cluster.start_program(apps::make_primes_program(params));
    if (!pid.is_ok()) return 1;
    auto code = cluster.run_program(pid.value(), 100'000 * kNanosPerSecond);
    if (!code.is_ok()) {
      std::fprintf(stderr, "run failed for mix %s\n", mix.name);
      return 1;
    }
    double secs = static_cast<double>(cluster.now() - t0) / kNanosPerSecond;

    std::uint64_t total = 0;
    std::vector<std::uint64_t> per_site;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      per_site.push_back(cluster.site(i).processing().executed_total);
      total += per_site.back();
    }
    std::printf("%-22s | %9.1fs |", mix.name, secs);
    for (std::size_t i = 0; i < per_site.size(); ++i) {
      std::printf(" %4.0f%%(x%.1f)",
                  100.0 * static_cast<double>(per_site[i]) /
                      static_cast<double>(total),
                  mix.speeds[i]);
    }
    std::printf("\n");
  }
  std::printf("\nwork shares follow speeds without any central planner — "
              "idle sites simply\nask for help less often when they are "
              "still busy (paper §3.5).\n");
  return 0;
}
