// Experiment A4 (paper §3.4/§3.5): dynamic entry and exit at runtime. A
// long prime job runs while sites join or sign off mid-flight; the
// makespan is compared against static clusters of the starting and ending
// sizes. The paper's claim: the application is "transparently
// redistributed on the newly structured cluster".
#include <cstdio>

#include "bench_util.hpp"

using namespace sdvm;
using bench::kPaperWorkMult;

namespace {

apps::PrimesParams job() {
  apps::PrimesParams p;
  p.p = 200;
  p.width = 16;
  p.work_mult = kPaperWorkMult;
  return p;
}

double run_static(int sites) {
  auto r = bench::run_primes_sim(sites, job());
  return r.ok ? r.seconds : -1;
}

double run_with_joiners() {
  sim::SimCluster cluster;
  cluster.add_sites(2);
  Nanos t0 = cluster.now();
  auto pid = cluster.start_program(apps::make_primes_program(job()));
  if (!pid.is_ok()) return -1;
  cluster.loop().run_for(5 * kNanosPerSecond);
  cluster.add_sites(2);  // cluster grows 2 → 4 mid-run
  auto code = cluster.run_program(pid.value(), 100'000 * kNanosPerSecond);
  if (!code.is_ok()) return -1;
  return static_cast<double>(cluster.now() - t0) / kNanosPerSecond;
}

double run_with_leavers() {
  sim::SimCluster cluster;
  cluster.add_sites(6);
  Nanos t0 = cluster.now();
  auto pid = cluster.start_program(apps::make_primes_program(job()));
  if (!pid.is_ok()) return -1;
  cluster.loop().run_for(5 * kNanosPerSecond);
  (void)cluster.sign_off(5);  // cluster shrinks 6 → 4 mid-run
  (void)cluster.sign_off(4);
  auto code = cluster.run_program(pid.value(), 100'000 * kNanosPerSecond);
  if (!code.is_ok()) return -1;
  return static_cast<double>(cluster.now() - t0) / kNanosPerSecond;
}

}  // namespace

int main() {
  std::printf("A4: dynamic entry/exit during a long run (primes p=200 "
              "width=16)\n\n");
  double s2 = run_static(2);
  double s4 = run_static(4);
  double s6 = run_static(6);
  double grow = run_with_joiners();
  double shrink = run_with_leavers();

  std::printf("static 2 sites              : %7.1fs\n", s2);
  std::printf("static 4 sites              : %7.1fs\n", s4);
  std::printf("static 6 sites              : %7.1fs\n", s6);
  std::printf("2 sites, +2 join at t=5s    : %7.1fs  (bounded by [4-site, "
              "2-site])\n", grow);
  std::printf("6 sites, -2 leave at t=5s   : %7.1fs  (bounded by [6-site, "
              "4-site])\n", shrink);

  bool grow_ok = grow > s4 * 0.95 && grow < s2 * 1.05;
  bool shrink_ok = shrink > s6 * 0.95 && shrink < s4 * 1.10;
  std::printf("\nadaptation works: growth %s, shrink %s\n",
              grow_ok ? "within bounds" : "OUT OF BOUNDS",
              shrink_ok ? "within bounds" : "OUT OF BOUNDS");
  return 0;
}
