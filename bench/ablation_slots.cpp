// Experiment P5 (paper §4, processing manager): "When a microthread has to
// wait for data due to an access to the memory, the processing manager can
// hide the latency by switching to another microthread run in parallel ...
// Tests showed that a number of about 5 microthreads run in (virtual)
// parallel produce good results."
//
// Threads mode, two sites, 1 ms link latency. Every task performs a
// rerouted file read from site 1 (a real blocking round trip for tasks on
// site 2) followed by a little compute; more executor slots overlap the
// stalls. Wall-clock makespan vs slot count.
#include <chrono>
#include <cstdio>

#include "api/local_cluster.hpp"
#include "api/program_builder.hpp"
#include "runtime/context.hpp"

using namespace sdvm;

namespace {

constexpr int kTasks = 48;

ProgramSpec make_io_workload() {
  ProgramSpec spec;
  spec.name = "io-stall";
  spec.entry = "entry";
  spec.threads.push_back({"entry", "", [](Context& ctx) {
    GlobalAddress done = ctx.spawn("done", kTasks);
    for (int i = 0; i < kTasks; ++i) {
      GlobalAddress t = ctx.spawn("task", 2);
      ctx.send_int(t, 0, static_cast<std::int64_t>(done.value));
      ctx.send_int(t, 1, i);
    }
  }});
  spec.threads.push_back({"task", "", [](Context& ctx) {
    // Blocking remote read: ~2 ms round trip for tasks executing on site 1.
    std::string blob = ctx.file_read("@2/shared.dat");
    volatile std::int64_t acc = 0;
    for (int k = 0; k < 30'000; ++k) acc += k ^ 5;
    ctx.send_int(GlobalAddress{static_cast<std::uint64_t>(ctx.param_int(0))},
                 static_cast<int>(ctx.param_int(1)),
                 static_cast<std::int64_t>(blob.size()) + acc % 2);
  }});
  spec.threads.push_back({"done", "", [](Context& ctx) {
    ctx.exit_program(0);
  }});
  return spec;
}

}  // namespace

int main() {
  std::printf("P5: executor slots (latency hiding), %d file-read tasks over "
              "2 sites, 1 ms links\n", kTasks);
  std::printf("%6s | %10s | %s\n", "slots", "wall time", "speed vs 1 slot");
  std::printf("---------------------------------------\n");

  double base = 0;
  for (int slots : {1, 2, 3, 5, 8, 12}) {
    LocalCluster::Options options;
    options.link.latency = 1'000'000;  // 1 ms each way
    LocalCluster cluster(options);
    SiteConfig cfg;
    cfg.executor_slots = slots;
    cfg.help_retry_interval = 500'000;
    cluster.add_sites(2, cfg);
    cluster.site(1).io().vfs_put("shared.dat", std::string(512, 'x'));

    auto t0 = std::chrono::steady_clock::now();
    auto pid = cluster.start_program(make_io_workload());
    if (!pid.is_ok()) {
      std::fprintf(stderr, "start failed\n");
      return 1;
    }
    auto code = cluster.wait_program(pid.value(), 300 * kNanosPerSecond);
    if (!code.is_ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   code.status().to_string().c_str());
      return 1;
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    if (slots == 1) base = secs;
    std::printf("%6d | %9.3fs | %.2fx\n", slots, secs, base / secs);
  }
  std::printf("\npaper: ~5 slots is the sweet spot — enough to hide memory "
              "latency,\nnot so many that switching clogs the site.\n");
  return 0;
}
