// Experiment A7 (paper §3.3): "microthreads in the critical path of the
// application can be identified, which are then executed with higher
// priority. ... it is possible to attach scheduling hints to microframes
// using information from the CDAG."
//
// An unbalanced DAG — one long heavy chain plus a sea of light independent
// tasks — is analyzed with the CDAG module; the derived bottom-level
// priorities are attached to frames via spawn(). Priority-aware local
// scheduling should track the critical path; FIFO lets chain tasks queue
// behind the light ones.
#include <cstdio>

#include "api/program_builder.hpp"
#include "runtime/context.hpp"
#include "sched_graph/cdag.hpp"
#include "sim/sim_cluster.hpp"

using namespace sdvm;

namespace {

constexpr int kChainLength = 12;
constexpr int kLightTasks = 48;
constexpr std::int64_t kChainCost = 50'000'000;  // 50 ms virtual
constexpr std::int64_t kLightCost = 10'000'000;  // 10 ms virtual

/// Builds the CDAG of the workload and returns (chain priority, light
/// priority) derived from bottom levels.
std::pair<int, int> derive_priorities() {
  sched_graph::Cdag g;
  std::vector<sched_graph::NodeId> chain;
  for (int i = 0; i < kChainLength; ++i) {
    chain.push_back(g.add_node("chain" + std::to_string(i), kChainCost));
    if (i > 0) (void)g.add_dependency(chain[static_cast<std::size_t>(i - 1)],
                                      chain[static_cast<std::size_t>(i)]);
  }
  sched_graph::NodeId light = g.add_node("light", kLightCost);
  (void)light;
  auto prio = g.priorities(100);
  return {prio[chain.front()], prio[g.size() - 1]};
}

ProgramSpec make_workload(bool use_hints) {
  auto [chain_prio, light_prio] = derive_priorities();
  int cp = use_hints ? chain_prio : 0;
  int lp = use_hints ? light_prio : 0;

  ProgramSpec spec;
  spec.name = use_hints ? "hints-on" : "hints-off";
  spec.entry = "entry";
  spec.threads.push_back(
      {"entry", "",
       [cp, lp](Context& ctx) {
         // The collector counts chain completion + every light task.
         GlobalAddress done = ctx.spawn("done", 1 + kLightTasks, 100);
         GlobalAddress chain = ctx.spawn("chain", 3, cp);
         ctx.send_int(chain, 0, 0);  // depth
         ctx.send_int(chain, 1, static_cast<std::int64_t>(done.value));
         ctx.send_int(chain, 2, 0);  // completion slot
         for (int i = 0; i < kLightTasks; ++i) {
           GlobalAddress w = ctx.spawn("light", 2, lp);
           ctx.send_int(w, 0, static_cast<std::int64_t>(done.value));
           ctx.send_int(w, 1, 1 + i);
         }
       }});
  spec.threads.push_back(
      {"chain", "",
       [cp](Context& ctx) {
         ctx.charge(kChainCost);
         std::int64_t depth = ctx.param_int(0);
         GlobalAddress done{static_cast<std::uint64_t>(ctx.param_int(1))};
         if (depth + 1 >= kChainLength) {
           ctx.send_int(done, static_cast<int>(ctx.param_int(2)), 1);
         } else {
           GlobalAddress next = ctx.spawn("chain", 3, cp);
           ctx.send_int(next, 0, depth + 1);
           ctx.send_int(next, 1, static_cast<std::int64_t>(done.value));
           ctx.send_int(next, 2, ctx.param_int(2));
         }
       }});
  spec.threads.push_back({"light", "", [](Context& ctx) {
                            ctx.charge(kLightCost);
                            GlobalAddress done{
                                static_cast<std::uint64_t>(ctx.param_int(0))};
                            ctx.send_int(done, static_cast<int>(
                                                   ctx.param_int(1)), 1);
                          }});
  spec.threads.push_back({"done", "", [](Context& ctx) {
                            ctx.exit_program(0);
                          }});
  return spec;
}

double run(LocalSchedPolicy policy, bool use_hints) {
  sim::SimCluster cluster;
  SiteConfig cfg;
  cfg.local_sched = policy;
  cfg.help_retry_interval = 500'000;
  cluster.add_sites(2, 1.0, cfg);
  Nanos t0 = cluster.now();
  auto pid = cluster.start_program(make_workload(use_hints));
  if (!pid.is_ok()) std::abort();
  auto code = cluster.run_program(pid.value(), 100'000 * kNanosPerSecond);
  if (!code.is_ok()) std::abort();
  return static_cast<double>(cluster.now() - t0) / kNanosPerSecond;
}

}  // namespace

int main() {
  std::printf("A7: CDAG scheduling hints (chain of %d x 50ms + %d x 10ms "
              "lights, 2 sites)\n\n", kChainLength, kLightTasks);

  auto [chain_prio, light_prio] = derive_priorities();
  std::printf("CDAG analysis: chain-head bottom-level priority %d, light "
              "task priority %d\n", chain_prio, light_prio);
  std::printf("critical path lower bound: %.1fs; perfect 2-site makespan: "
              "%.1fs\n\n",
              kChainLength * kChainCost / 1e9,
              std::max(kChainLength * kChainCost,
                       (kChainLength * kChainCost +
                        kLightTasks * kLightCost) / 2) / 1e9);

  double fifo = run(LocalSchedPolicy::kFifo, false);
  double hinted = run(LocalSchedPolicy::kPriority, true);
  std::printf("FIFO, no hints           : %6.2fs\n", fifo);
  std::printf("priority queue + CDAG    : %6.2fs\n", hinted);
  std::printf("\nhint benefit: %.1f%% faster (paper: critical-path "
              "microthreads \"executed with higher priority\")\n",
              (1.0 - hinted / fifo) * 100.0);
  return 0;
}
