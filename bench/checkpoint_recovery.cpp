// Experiment A6 (paper §2.2/§6, crash management [4]): checkpointing cost
// and recovery behaviour. Sweeps the checkpoint interval to measure the
// steady-state overhead, then kills a site mid-run and reports the lost
// time relative to an undisturbed run.
#include <cstdio>

#include "bench_util.hpp"

using namespace sdvm;
using bench::kPaperWorkMult;

namespace {

apps::PrimesParams job() {
  apps::PrimesParams p;
  p.p = 150;
  p.width = 16;
  p.work_mult = kPaperWorkMult / 2;
  return p;
}

double run_once(SiteConfig cfg, bool kill_mid_run, std::uint64_t* checkpoints,
                std::uint64_t* recoveries) {
  sim::SimCluster cluster;
  cluster.add_sites(4, 1.0, cfg);
  Nanos t0 = cluster.now();
  auto pid = cluster.start_program(apps::make_primes_program(job()));
  if (!pid.is_ok()) return -1;
  if (kill_mid_run) {
    // Strictly after the first commit of even the slowest interval in the
    // sweep — a crash before any committed epoch is unrecoverable by
    // design (nothing to roll back to) and the job would hang.
    cluster.loop().run_for(5 * kNanosPerSecond);
    cluster.kill(3);
  }
  auto code = cluster.run_program(pid.value(), 100'000 * kNanosPerSecond);
  if (!code.is_ok()) return -1;
  for (std::size_t i = 0; i + 1 < cluster.size(); ++i) {  // skip the victim
    if (checkpoints != nullptr) {
      *checkpoints += cluster.site(i).crash().checkpoints_committed;
    }
    if (recoveries != nullptr) {
      *recoveries += cluster.site(i).crash().recoveries;
    }
  }
  return static_cast<double>(cluster.now() - t0) / kNanosPerSecond;
}

}  // namespace

int main() {
  std::printf("A6: checkpointing and recovery (4 sites, primes p=150)\n\n");

  SiteConfig off;
  off.checkpoints_enabled = false;
  double baseline = run_once(off, false, nullptr, nullptr);
  std::printf("no checkpoints, no crash     : %7.1fs (baseline)\n\n", baseline);

  std::printf("checkpoint interval sweep (no crash):\n");
  std::printf("%10s | %10s | %12s | %8s\n", "interval", "makespan",
              "checkpoints", "overhead");
  for (Nanos interval : {kNanosPerSecond / 4, kNanosPerSecond / 2,
                         kNanosPerSecond, 2 * kNanosPerSecond}) {
    SiteConfig cfg;
    cfg.checkpoints_enabled = true;
    cfg.checkpoint_interval = interval;
    std::uint64_t ckpts = 0;
    double t = run_once(cfg, false, &ckpts, nullptr);
    std::printf("%8.2fs | %9.1fs | %12llu | %+7.2f%%\n",
                static_cast<double>(interval) / kNanosPerSecond, t,
                static_cast<unsigned long long>(ckpts),
                (t / baseline - 1.0) * 100.0);
  }

  std::printf("\ncrash at t=5s, recovery from last checkpoint:\n");
  std::printf("%10s | %10s | %12s | %10s\n", "interval", "makespan",
              "recoveries", "lost time");
  for (Nanos interval : {kNanosPerSecond / 2, kNanosPerSecond,
                         2 * kNanosPerSecond}) {
    SiteConfig cfg;
    cfg.checkpoints_enabled = true;
    cfg.checkpoint_interval = interval;
    cfg.heartbeat_interval = 100'000'000;
    cfg.failure_timeout = 400'000'000;
    std::uint64_t recov = 0;
    double t = run_once(cfg, true, nullptr, &recov);
    std::printf("%8.2fs | %9.1fs | %12llu | %+8.1fs\n",
                static_cast<double>(interval) / kNanosPerSecond, t,
                static_cast<unsigned long long>(recov), t - baseline);
  }
  std::printf("\nshorter intervals: more checkpoint cost, less work lost per "
              "crash — the classic trade-off.\n");
  return 0;
}
