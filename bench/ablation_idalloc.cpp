// Experiment A2 (paper §4, cluster manager): the three logical-id
// allocation concepts — a central contact site ("central point of
// failure"), id-block contingents, and modulo servers. A join storm of 24
// sites measures sign-on message cost and virtual join latency per
// strategy.
#include <cstdio>
#include <set>

#include "sim/sim_cluster.hpp"

using namespace sdvm;

int main() {
  std::printf("A2: logical-id allocation strategies (24-site join storm)\n");
  std::printf("%12s | %14s | %16s | %s\n", "strategy", "sign-on msgs",
              "mean join (ms)", "unique ids");
  std::printf("----------------------------------------------------------------\n");

  struct Case {
    IdAllocStrategy strategy;
    const char* name;
  };
  for (auto [strategy, name] : {Case{IdAllocStrategy::kCentralContact,
                                     "central"},
                                Case{IdAllocStrategy::kContingent,
                                     "contingent"},
                                Case{IdAllocStrategy::kModulo, "modulo"}}) {
    sim::SimCluster cluster;
    SiteConfig cfg;
    cfg.id_alloc = strategy;
    Nanos total_join = 0;
    int joins = 0;
    for (int i = 0; i < 24; ++i) {
      Nanos t0 = cluster.now();
      cfg.name = "site" + std::to_string(i + 1);
      // Contact a spread of existing members, not always the founder, so
      // id requests actually get forwarded under central/modulo.
      cluster.add_site(cfg, i > 1 ? (i * 7 + 3) % i : 0);
      if (i > 0) {
        total_join += cluster.now() - t0;
        ++joins;
      }
    }
    std::uint64_t messages = 0;
    std::set<SiteId> ids;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      messages += cluster.site(i).cluster().signon_messages;
      ids.insert(cluster.site(i).id());
    }
    std::printf("%12s | %14llu | %16.3f | %zu/24%s\n", name,
                static_cast<unsigned long long>(messages),
                static_cast<double>(total_join) / joins / 1e6, ids.size(),
                ids.size() == 24 ? "" : "  !! COLLISION");
  }
  std::printf("\ncentral: every sign-on funnels through site 1 (single point "
              "of failure);\ncontingent: blocks amortize the central trips; "
              "modulo: no coordination at all.\n");
  return 0;
}
